//! Serving load generator: drives a `uctr-served` daemon and measures
//! tail latency and sustained throughput.
//!
//! Two modes:
//!
//! * **closed** (default): `--conns` connections, each firing its next
//!   request the moment the previous response lands. Measures the
//!   daemon's sustained capacity at a fixed concurrency level.
//! * **open**: requests arrive on a fixed schedule (`--rate` per second)
//!   regardless of completions, and latency is measured from the
//!   *scheduled* arrival — so a daemon that falls behind accrues queueing
//!   delay instead of silently slowing the clock down
//!   (coordinated-omission-free).
//!
//! Flags:
//!   --addr HOST:PORT     drive a running daemon (default: spawn one
//!                        in-process on a loopback port)
//!   --shards N           in-process daemon shard count (default: all cores)
//!   --mode closed|open   (default closed)
//!   --conns N            concurrent connections (default 4)
//!   --rate R             open-loop arrivals/sec (default 200)
//!   --duration-ms MS     measured window (default 2000)
//!   --warmup-ms MS       untimed lead-in (default 300)
//!   --task qa|verification  request task (default qa)
//!   --tables N           zoo tables per request (default 2)
//!   --seed S             base request seed (default 0xC11E)
//!   --merge-json PATH    insert the results as the `serving` section of an
//!                        existing BENCH JSON file (read-modify-write)
//!   --json PATH          also write the section as a standalone JSON file
//!   --check-floor PATH   one-sided serving gate: fail on throughput
//!                        regression or p99 blowup vs the recorded baselines
//!   --md                 print a markdown latency table (CI step summary)

// Reporting binary: stdout lines are the product, and unwrap aborts the run
// on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{flag_value, zoo, AcceptanceFloor};
use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use uctr::serve::{Client, Daemon, GenRequest, RequestSpec, ServeConfig, WireTable};

/// One worker's tally over the recorded window.
#[derive(Default)]
struct Tally {
    latencies_ns: Vec<u64>,
    requests: u64,
    rejections: u64,
    samples: u64,
    errors: u64,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.latencies_ns.extend(other.latencies_ns);
        self.requests += other.requests;
        self.rejections += other.rejections;
        self.samples += other.samples;
        self.errors += other.errors;
    }
}

/// Exact quantile over a sorted latency vector (nearest-rank).
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// The rotating request templates every worker draws from: distinct seeds
/// and table batches so concurrent traffic is heterogeneous, like a fleet
/// of self-training clients would be.
fn request_templates(task: &str, tables_per_request: usize, base_seed: u64) -> Vec<GenRequest> {
    let inputs = zoo::ragged_zoo(1);
    let wire: Vec<WireTable> = inputs.iter().map(WireTable::from_input).collect();
    let per = tables_per_request.max(1);
    (0..8)
        .map(|i| {
            let batch: Vec<WireTable> =
                (0..per).map(|j| wire[(i * per + j) % wire.len()].clone()).collect();
            let spec = match task {
                "verification" => RequestSpec::verification(base_seed + i as u64),
                _ => RequestSpec::qa(base_seed + i as u64),
            };
            GenRequest::generate(0, spec, batch)
        })
        .collect()
}

/// Sends one request, retrying through backpressure rejections until it
/// completes. Returns `(latency_from(started), samples, rejections)` or
/// `None` on a connection/protocol error.
fn drive_one(
    client: &mut Client,
    request: &GenRequest,
    started: Instant,
) -> Option<(u64, u64, u64)> {
    let mut rejections = 0u64;
    loop {
        match client.request(request) {
            Ok(resp) if resp.is_rejected() => {
                rejections += 1;
                thread::sleep(Duration::from_millis(resp.retry_after_ms.max(1)));
            }
            Ok(resp) if resp.is_ok() => {
                let ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                return Some((ns, resp.samples.len() as u64, rejections));
            }
            Ok(_) | Err(_) => return None,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn closed_loop(
    addr: &str,
    conns: usize,
    templates: &[GenRequest],
    record_from: Instant,
    deadline: Instant,
) -> Tally {
    let next_id = AtomicU64::new(1);
    let mut total = Tally::default();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|worker| {
                let next_id = &next_id;
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    let Ok(mut client) = Client::connect(addr) else {
                        tally.errors += 1;
                        return tally;
                    };
                    let mut turn = worker;
                    loop {
                        let started = Instant::now();
                        if started >= deadline {
                            return tally;
                        }
                        let mut request = templates[turn % templates.len()].clone();
                        request.id = next_id.fetch_add(1, Ordering::Relaxed);
                        turn += 1;
                        match drive_one(&mut client, &request, started) {
                            Some((ns, samples, rejections)) => {
                                if started >= record_from {
                                    tally.requests += 1;
                                    tally.samples += samples;
                                    tally.rejections += rejections;
                                    tally.latencies_ns.push(ns);
                                }
                            }
                            None => {
                                tally.errors += 1;
                                return tally;
                            }
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            total.absorb(handle.join().unwrap());
        }
    });
    total
}

fn open_loop(
    addr: &str,
    conns: usize,
    rate: f64,
    templates: &[GenRequest],
    record_from: Instant,
    deadline: Instant,
) -> Tally {
    let interval = Duration::from_secs_f64(1.0 / rate.max(1.0));
    let (tx, rx) = mpsc::channel::<Instant>();
    let rx = Arc::new(Mutex::new(rx));
    let next_id = AtomicU64::new(1);
    let mut total = Tally::default();
    thread::scope(|scope| {
        // Pacer: emits scheduled arrival instants on a fixed cadence. The
        // schedule never waits for completions — that is what makes the
        // measurement open-loop.
        scope.spawn(move || {
            let mut next = Instant::now();
            while next < deadline {
                let now = Instant::now();
                if next > now {
                    thread::sleep(next - now);
                }
                if tx.send(next).is_err() {
                    return;
                }
                next += interval;
            }
        });
        let handles: Vec<_> = (0..conns)
            .map(|worker| {
                let rx = Arc::clone(&rx);
                let next_id = &next_id;
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    let Ok(mut client) = Client::connect(addr) else {
                        tally.errors += 1;
                        return tally;
                    };
                    let mut turn = worker;
                    loop {
                        // Take the next scheduled arrival; latency counts
                        // from the *schedule*, so time spent waiting here
                        // (all workers busy) is part of the tail.
                        let scheduled = match rx.lock().unwrap().recv() {
                            Ok(at) => at,
                            Err(_) => return tally,
                        };
                        let mut request = templates[turn % templates.len()].clone();
                        request.id = next_id.fetch_add(1, Ordering::Relaxed);
                        turn += 1;
                        match drive_one(&mut client, &request, scheduled) {
                            Some((ns, samples, rejections)) => {
                                if scheduled >= record_from {
                                    tally.requests += 1;
                                    tally.samples += samples;
                                    tally.rejections += rejections;
                                    tally.latencies_ns.push(ns);
                                }
                            }
                            None => {
                                tally.errors += 1;
                                return tally;
                            }
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            total.absorb(handle.join().unwrap());
        }
    });
    total
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse_usize = |name: &str, default: usize| -> usize {
        flag_value(&args, name).map(|v| v.parse().expect("numeric flag")).unwrap_or(default)
    };
    let parse_u64 = |name: &str, default: u64| -> u64 {
        flag_value(&args, name).map(|v| v.parse().expect("numeric flag")).unwrap_or(default)
    };
    let mode = flag_value(&args, "--mode").unwrap_or_else(|| "closed".into());
    let conns = parse_usize("--conns", 4);
    let rate =
        flag_value(&args, "--rate").map(|v| v.parse().expect("numeric flag")).unwrap_or(200.0);
    let duration_ms = parse_u64("--duration-ms", 2000);
    let warmup_ms = parse_u64("--warmup-ms", 300);
    let task = flag_value(&args, "--task").unwrap_or_else(|| "qa".into());
    let tables_per_request = parse_usize("--tables", 2);
    let base_seed = parse_u64("--seed", 0xC11E);
    let shards =
        parse_usize("--shards", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2));

    // Either drive a remote daemon or spawn one in-process on a loopback
    // port (same code path the CI smoke test launches as a separate bin).
    let (addr, local_daemon) = match flag_value(&args, "--addr") {
        Some(addr) => (addr, None),
        None => {
            let daemon =
                Arc::new(Daemon::start(ServeConfig::with_shards(shards)).expect("daemon start"));
            let (bound, _accept) = daemon.spawn_listener("127.0.0.1:0").expect("bind loopback");
            (bound.to_string(), Some(daemon))
        }
    };

    let templates = request_templates(&task, tables_per_request, base_seed);
    let started = Instant::now();
    let record_from = started + Duration::from_millis(warmup_ms);
    let deadline = record_from + Duration::from_millis(duration_ms);
    let mut tally = match mode.as_str() {
        "closed" => closed_loop(&addr, conns, &templates, record_from, deadline),
        "open" => open_loop(&addr, conns, rate, &templates, record_from, deadline),
        other => {
            eprintln!("loadgen: unknown --mode `{other}` (expected closed|open)");
            std::process::exit(2);
        }
    };
    let measured_secs = (duration_ms as f64 / 1e3).max(1e-9);
    if tally.requests == 0 {
        eprintln!(
            "loadgen: no requests completed in the measured window ({} errors)",
            tally.errors
        );
        std::process::exit(1);
    }

    tally.latencies_ns.sort_unstable();
    let p50 = quantile_ns(&tally.latencies_ns, 0.50);
    let p99 = quantile_ns(&tally.latencies_ns, 0.99);
    let p999 = quantile_ns(&tally.latencies_ns, 0.999);
    let max = *tally.latencies_ns.last().unwrap();
    let samples_per_sec = tally.samples as f64 / measured_secs;
    let requests_per_sec = tally.requests as f64 / measured_secs;

    // Daemon-side counters over one extra connection (pool behaviour and
    // stealing are invisible to a pure client).
    let daemon_stats = Client::connect(&addr)
        .ok()
        .and_then(|mut c| c.request(&GenRequest::stats(0)).ok())
        .and_then(|resp| resp.stats);

    let loop_desc = if mode == "open" {
        format!("open-loop {rate:.0}/sec arrivals, {conns} conns")
    } else {
        format!("closed-loop, {conns} conns")
    };
    println!(
        "serving throughput: {samples_per_sec:.0} samples/sec ({requests_per_sec:.0} requests/sec) \
         over {duration_ms}ms {loop_desc}"
    );
    println!(
        "serving latency: p50 {:.2}ms · p99 {:.2}ms · p999 {:.2}ms (max {:.2}ms, {} requests, \
         {} rejections, {} errors)",
        ms(p50),
        ms(p99),
        ms(p999),
        ms(max),
        tally.requests,
        tally.rejections,
        tally.errors,
    );
    if let Some(stats) = &daemon_stats {
        println!(
            "serving daemon: {} shards, pool {}/{} warm hits, {} stolen, {} completed",
            stats.shards,
            stats.pool_hits,
            stats.pool_hits + stats.pool_misses,
            stats.requests_stolen,
            stats.requests_completed,
        );
    }
    if args.iter().any(|a| a == "--md") {
        println!("| metric | value |");
        println!("|---|---|");
        println!("| mode | {loop_desc} |");
        println!("| sustained samples/sec | {samples_per_sec:.0} |");
        println!("| requests/sec | {requests_per_sec:.0} |");
        println!("| p50 | {:.2} ms |", ms(p50));
        println!("| p99 | {:.2} ms |", ms(p99));
        println!("| p999 | {:.2} ms |", ms(p999));
        println!("| max | {:.2} ms |", ms(max));
        println!("| rejections | {} |", tally.rejections);
    }

    let mut serving = vec![
        ("mode".into(), Value::Str(mode.clone())),
        ("conns".into(), Value::Int(conns as i64)),
        ("shards".into(), Value::Int(shards as i64)),
        ("task".into(), Value::Str(task.clone())),
        ("tables_per_request".into(), Value::Int(tables_per_request as i64)),
        ("duration_ms".into(), Value::Int(duration_ms as i64)),
        ("requests".into(), Value::Int(tally.requests as i64)),
        ("rejections".into(), Value::Int(tally.rejections as i64)),
        ("errors".into(), Value::Int(tally.errors as i64)),
        ("samples".into(), Value::Int(tally.samples as i64)),
        ("samples_per_sec".into(), Value::Float(samples_per_sec)),
        ("requests_per_sec".into(), Value::Float(requests_per_sec)),
        ("p50_ms".into(), Value::Float(ms(p50))),
        ("p99_ms".into(), Value::Float(ms(p99))),
        ("p999_ms".into(), Value::Float(ms(p999))),
        ("max_ms".into(), Value::Float(ms(max))),
    ];
    if mode == "open" {
        serving.insert(1, ("arrival_rate_per_sec".into(), Value::Float(rate)));
    }
    if let Some(stats) = &daemon_stats {
        serving.push((
            "daemon".into(),
            Value::Obj(vec![
                ("pool_hits".into(), Value::Int(stats.pool_hits as i64)),
                ("pool_misses".into(), Value::Int(stats.pool_misses as i64)),
                ("requests_stolen".into(), Value::Int(stats.requests_stolen as i64)),
                ("requests_completed".into(), Value::Int(stats.requests_completed as i64)),
                ("requests_rejected".into(), Value::Int(stats.requests_rejected as i64)),
            ]),
        ));
    }
    let serving = Value::Obj(serving);

    if let Some(path) = flag_value(&args, "--json") {
        if let Err(e) = std::fs::write(&path, serde_json::to_string_pretty(&serving).unwrap()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(&args, "--merge-json") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let mut doc = match serde_json::parse_value(&text) {
            Ok(Value::Obj(fields)) => fields,
            Ok(_) => {
                eprintln!("{path}: top level is not a JSON object");
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(2);
            }
        };
        match doc.iter_mut().find(|(k, _)| k == "serving") {
            Some((_, slot)) => *slot = serving.clone(),
            None => doc.push(("serving".into(), serving.clone())),
        }
        let out = serde_json::to_string_pretty(&Value::Obj(doc)).unwrap();
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("merged `serving` section into {path}");
    }

    if let Some(path) = flag_value(&args, "--check-floor") {
        let floor = match AcceptanceFloor::load(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot load acceptance floor: {e}");
                std::process::exit(2);
            }
        };
        match floor.check_serving(samples_per_sec, ms(p99)) {
            Ok(()) => println!("serving gate passed (floor: {path})"),
            Err(msg) => {
                eprintln!("serving gate FAILED: {msg} (floor: {path})");
                std::process::exit(1);
            }
        }
    }

    if let Some(daemon) = local_daemon {
        daemon.shutdown();
    }
}
