//! Reproduces **Figure 1**: model performance degrades dramatically on
//! topics not seen during training (Chemmengath et al. \[4\], reproduced in
//! the paper's introduction as the motivation for unsupervised methods).
//!
//! For each topic of the WikiSQL-like corpus, a model is trained on the
//! other four topics and evaluated both in-domain (topics it saw) and on
//! the held-out topic.

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::print_table;
use corpora::{wikisql_like, CorpusConfig, TOPICS};
use models::{denotation_accuracy, QaModel};
use uctr::Sample;

fn denot(model: &QaModel, samples: &[Sample]) -> f64 {
    let pairs: Vec<(String, String)> = samples
        .iter()
        .filter_map(|s| Some((model.predict(s), s.label.as_answer()?.to_string())))
        .collect();
    denotation_accuracy(&pairs)
}

fn main() {
    let bench =
        wikisql_like(CorpusConfig { n_tables: 240, eval_per_table: 24, ..CorpusConfig::default() });
    let mut rows = Vec::new();
    let mut in_sum = 0.0;
    let mut out_sum = 0.0;
    // For each topic T, compare two models ON THE SAME dev slice (topic T):
    // one trained with T in the mix, one trained with T held out. The gap
    // isolates the topic-transfer effect (Chemmengath et al. [4]).
    for topic in TOPICS {
        let train_with: Vec<Sample> = bench.gold.train.to_vec();
        let train_without: Vec<Sample> =
            bench.gold.train.iter().filter(|s| s.topic != *topic).cloned().collect();
        let dev_topic: Vec<Sample> =
            bench.gold.dev.iter().filter(|s| s.topic == *topic).cloned().collect();
        let model_with = QaModel::train(&train_with);
        let model_without = QaModel::train(&train_without);
        let acc_in = denot(&model_with, &dev_topic);
        let acc_out = denot(&model_without, &dev_topic);
        in_sum += acc_in;
        out_sum += acc_out;
        rows.push(vec![
            topic.to_string(),
            format!("{acc_in:.1}"),
            format!("{acc_out:.1}"),
            format!("{:+.1}", acc_out - acc_in),
        ]);
    }
    let n = TOPICS.len() as f64;
    rows.push(vec![
        "mean".to_string(),
        format!("{:.1}", in_sum / n),
        format!("{:.1}", out_sum / n),
        format!("{:+.1}", (out_sum - in_sum) / n),
    ]);
    print_table(
        "Figure 1 — topic-transfer degradation (denotation accuracy)",
        &["Topic", "Topic seen in training", "Topic held out", "Delta"],
        &rows,
    );
    println!("\nExpected shape: accuracy drops on the held-out topic (paper Figure 1");
    println!("shows drops of roughly 10-25 points when testing on unseen topics).");
}
