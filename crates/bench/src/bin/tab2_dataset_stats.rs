//! Reproduces **Table II**: dataset statistics of the four (synthetic
//! stand-in) benchmarks — totals, evidence-type mix, and label/question
//! types — next to the original datasets' numbers.

use bench::print_table;
use corpora::{feverous_like, semtab_like, tatqa_like, wikisql_like, CorpusConfig};
use uctr::{AnswerKind, Dataset};

fn verdict_cells(d: &Dataset) -> String {
    let v = d.verdict_counts();
    format!("{} Supported, {} Refuted, {} Unknown", v[0].1, v[1].1, v[2].1)
}

fn evidence_cells(d: &Dataset) -> String {
    let e = d.evidence_counts();
    format!("{} table, {} text, {} combined", e[0].1, e[1].1, e[2].1)
}

fn answer_kind_cells(d: &Dataset) -> String {
    let mut span = 0;
    let mut count = 0;
    let mut arith = 0;
    for s in d.train.iter().chain(&d.dev).chain(&d.test) {
        match s.answer_kind {
            AnswerKind::Span => span += 1,
            AnswerKind::Count => count += 1,
            AnswerKind::Arithmetic => arith += 1,
            AnswerKind::NotApplicable => {}
        }
    }
    format!("{span} Span, {count} Counting, {arith} Arithmetic")
}

fn main() {
    let cfg = CorpusConfig::default();
    let feverous = feverous_like(cfg);
    let tatqa = tatqa_like(cfg);
    let wikisql = wikisql_like(cfg);
    let semtab = semtab_like(cfg);

    let rows = vec![
        vec![
            "FEVEROUS-like".into(),
            "Wikipedia".into(),
            feverous.gold.len().to_string(),
            evidence_cells(&feverous.gold),
            verdict_cells(&feverous.gold),
        ],
        vec![
            "TAT-QA-like".into(),
            "Finance".into(),
            tatqa.gold.len().to_string(),
            evidence_cells(&tatqa.gold),
            answer_kind_cells(&tatqa.gold),
        ],
        vec![
            "WikiSQL-like".into(),
            "Wikipedia".into(),
            wikisql.gold.len().to_string(),
            evidence_cells(&wikisql.gold),
            answer_kind_cells(&wikisql.gold),
        ],
        vec![
            "SEM-TAB-FACTS-like".into(),
            "Science".into(),
            semtab.gold.len().to_string(),
            evidence_cells(&semtab.gold),
            verdict_cells(&semtab.gold),
        ],
    ];
    print_table(
        "Table II — dataset statistics (synthetic stand-ins)",
        &["Dataset", "Domain", "Total", "Evidence types", "Label/Question types"],
        &rows,
    );
    println!("\nOriginal datasets for comparison (paper Table II):");
    println!("  FEVEROUS      87,026 total; 34,963 sent / 28,760 table / 24,667 combined; 49,115 Sup, 33,669 Ref, 4,242 NEI");
    println!("  TAT-QA        16,552 total; 7,431 table / 3,902 sent / 5,219 combined; 9,211 Span, 377 Counting, 6,964 Arithmetic");
    println!("  WikiSQL       80,654 total; 24,241 tables; What/How many/Who questions");
    println!("  SEM-TAB-FACTS  5,715 total; 1,085 tables; 3,342 Sup, 2,149 Ref, 224 Unknown");
    println!("\nThe stand-ins are scaled down ~20x for CPU-speed experiments; the evidence,");
    println!("label and answer-type *proportions* follow the originals (see corpora crate).");
}
