//! Reproduces **Table II**: dataset statistics of the four (synthetic
//! stand-in) benchmarks — totals, evidence-type mix, and label/question
//! types — next to the original datasets' numbers. Also runs the UCTR
//! synthesis pipeline over each benchmark's unlabeled tables and prints the
//! live [`uctr::PipelineReport`] counters (the generation funnel behind the
//! composition numbers).
//!
//! Flags (the CI generation-quality gate):
//!   --report-json PATH   write all four pipeline reports as one JSON object
//!   --check-floor PATH   exit non-zero if any run is below the committed
//!                        floor (see ci/acceptance_floor.json)

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{
    check_floor, composition_row, flag_value, prefilter_line, print_table, reports_to_json,
    throughput_line, AcceptanceFloor,
};
use corpora::{feverous_like, semtab_like, tatqa_like, wikisql_like, Benchmark, CorpusConfig};
use uctr::{AnswerKind, Dataset, PipelineReport, UctrConfig, UctrPipeline};

fn verdict_cells(d: &Dataset) -> String {
    let v = d.verdict_counts();
    format!("{} Supported, {} Refuted, {} Unknown", v[0].1, v[1].1, v[2].1)
}

fn evidence_cells(d: &Dataset) -> String {
    let e = d.evidence_counts();
    format!("{} table, {} text, {} combined", e[0].1, e[1].1, e[2].1)
}

fn answer_kind_cells(d: &Dataset) -> String {
    let mut span = 0;
    let mut count = 0;
    let mut arith = 0;
    for s in d.train.iter().chain(&d.dev).chain(&d.test) {
        match s.answer_kind {
            AnswerKind::Span => span += 1,
            AnswerKind::Count => count += 1,
            AnswerKind::Arithmetic => arith += 1,
            AnswerKind::NotApplicable => {}
        }
    }
    format!("{span} Span, {count} Counting, {arith} Arithmetic")
}

/// Runs the synthesis pipeline over a benchmark's unlabeled tables and
/// returns the live telemetry report.
fn synthesize(bench: &Benchmark, config: UctrConfig) -> PipelineReport {
    let pipeline = UctrPipeline::new(config);
    let (samples, report) = pipeline.generate_with_report(&bench.unlabeled);
    assert_eq!(
        samples.len() as u64,
        report.accepted(),
        "accepted counter must equal the sample count"
    );
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = CorpusConfig::default();
    let feverous = feverous_like(cfg);
    let tatqa = tatqa_like(cfg);
    let wikisql = wikisql_like(cfg);
    let semtab = semtab_like(cfg);

    let rows = vec![
        vec![
            "FEVEROUS-like".into(),
            "Wikipedia".into(),
            feverous.gold.len().to_string(),
            evidence_cells(&feverous.gold),
            verdict_cells(&feverous.gold),
        ],
        vec![
            "TAT-QA-like".into(),
            "Finance".into(),
            tatqa.gold.len().to_string(),
            evidence_cells(&tatqa.gold),
            answer_kind_cells(&tatqa.gold),
        ],
        vec![
            "WikiSQL-like".into(),
            "Wikipedia".into(),
            wikisql.gold.len().to_string(),
            evidence_cells(&wikisql.gold),
            answer_kind_cells(&wikisql.gold),
        ],
        vec![
            "SEM-TAB-FACTS-like".into(),
            "Science".into(),
            semtab.gold.len().to_string(),
            evidence_cells(&semtab.gold),
            verdict_cells(&semtab.gold),
        ],
    ];
    print_table(
        "Table II — dataset statistics (synthetic stand-ins)",
        &["Dataset", "Domain", "Total", "Evidence types", "Label/Question types"],
        &rows,
    );
    println!("\nOriginal datasets for comparison (paper Table II):");
    println!("  FEVEROUS      87,026 total; 34,963 sent / 28,760 table / 24,667 combined; 49,115 Sup, 33,669 Ref, 4,242 NEI");
    println!("  TAT-QA        16,552 total; 7,431 table / 3,902 sent / 5,219 combined; 9,211 Span, 377 Counting, 6,964 Arithmetic");
    println!("  WikiSQL       80,654 total; 24,241 tables; What/How many/Who questions");
    println!("  SEM-TAB-FACTS  5,715 total; 1,085 tables; 3,342 Sup, 2,149 Ref, 224 Unknown");
    println!("\nThe stand-ins are scaled down ~20x for CPU-speed experiments; the evidence,");
    println!("label and answer-type *proportions* follow the originals (see corpora crate).");

    // Synthesis telemetry: rerun UCTR over each benchmark's unlabeled
    // tables and report the generation funnel from live counters.
    let started = std::time::Instant::now();
    let reports: Vec<(String, PipelineReport)> = vec![
        ("feverous-like".into(), synthesize(&feverous, UctrConfig::verification())),
        ("tatqa-like".into(), synthesize(&tatqa, UctrConfig::qa())),
        ("wikisql-like".into(), synthesize(&wikisql, UctrConfig::qa())),
        ("semtabfacts-like".into(), synthesize(&semtab, UctrConfig::verification())),
    ];
    let elapsed = started.elapsed();
    let rows: Vec<Vec<String>> = reports.iter().map(|(name, r)| composition_row(name, r)).collect();
    print_table(
        "Synthesis telemetry — live PipelineReport counters per benchmark",
        &["Run", "Tables", "Accepted", "Rate", "By program kind", "By data source"],
        &rows,
    );
    for (name, r) in &reports {
        println!("\n[{name}] {}", r.summary().trim_end());
    }

    // Pipeline throughput across all four runs; the delta against the
    // committed baseline is informative only (never gates CI).
    let floor = flag_value(&args, "--check-floor").map(|path| match AcceptanceFloor::load(&path) {
        Ok(f) => (path, f),
        Err(e) => {
            eprintln!("cannot load acceptance floor: {e}");
            std::process::exit(2);
        }
    });
    let total_accepted: u64 = reports.iter().map(|(_, r)| r.accepted()).sum();
    println!("\n{}", throughput_line(total_accepted, elapsed, floor.as_ref().map(|(_, f)| f)));
    println!("{}", prefilter_line(&reports));

    if let Some(path) = flag_value(&args, "--report-json") {
        if let Err(e) = std::fs::write(&path, reports_to_json(&reports)) {
            eprintln!("cannot write report JSON to {path}: {e}");
            std::process::exit(2);
        }
        println!("\nwrote pipeline reports to {path}");
    }
    if let Some((path, floor)) = floor {
        println!();
        if !check_floor(&floor, &reports) {
            eprintln!("generation-quality gate FAILED (floor: {path})");
            std::process::exit(1);
        }
        println!("generation-quality gate passed (floor: {path})");
    }
}
