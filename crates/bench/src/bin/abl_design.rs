//! Design-choice ablations (DESIGN.md §13): the knobs that are not in the
//! paper's Table VIII but shape the reproduction's own design — the noise
//! channel's rate, the fluency-reranker's n-gram order, the synthetic data
//! volume per table, and the auto-generated template bank (the paper's
//! future-work extension).
//!
//! Each row reports SEM-TAB-FACTS-like dev micro-F1 of a verifier trained
//! on the correspondingly-configured synthetic data.

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{print_table, verifier_micro_f1};
use corpora::{semtab_like, CorpusConfig};
use models::{EvidenceView, VerdictSpace, VerifierModel};
use nlgen::{seed_corpus, NgramLm, NlGenerator, NoiseConfig};
use tabular::Table;
use uctr::{extend_bank_auto, TemplateBank, UctrConfig, UctrPipeline};

fn probe() -> Table {
    Table::from_strings(
        "probe",
        &[
            vec!["name", "city", "points", "wins"],
            vec!["Reds", "Oslo", "77", "21"],
            vec!["Blues", "Lima", "64", "18"],
            vec!["Greens", "Kyiv", "81", "24"],
            vec!["Golds", "Quito", "59", "15"],
            vec!["Silvers", "Porto", "70", "19"],
        ],
    )
    .unwrap()
}

fn main() {
    let bench = semtab_like(CorpusConfig::default());
    let dev = &bench.gold.dev;
    let base_cfg =
        UctrConfig { unknown_rate: 0.06, samples_per_table: 16, ..UctrConfig::verification() };
    // Average each configuration over three generation seeds: single runs
    // carry several points of variance that would drown the ablation.
    let eval = |make: &dyn Fn(UctrConfig) -> UctrPipeline, cfg: &UctrConfig| -> (f64, usize) {
        let mut f1_sum = 0.0;
        let mut n_last = 0;
        for seed in [13u64, 131, 1313] {
            let pipeline = make(UctrConfig { seed, ..cfg.clone() });
            let data = pipeline.generate(&bench.unlabeled);
            let model = VerifierModel::train(&data, VerdictSpace::ThreeWay, EvidenceView::Full);
            f1_sum += verifier_micro_f1(&model, dev);
            n_last = data.len();
        }
        (f1_sum / 3.0, n_last)
    };
    let plain = |cfg: UctrConfig| UctrPipeline::new(cfg);
    let mut rows: Vec<Vec<String>> = Vec::new();

    // --- noise-channel rate ---
    for (label, rate) in [("noise off", 0.0), ("noise 12% (default)", 0.12), ("noise 40%", 0.4)] {
        let cfg = UctrConfig { noise: NoiseConfig { sentence_rate: rate }, ..base_cfg.clone() };
        let (f1, n) = eval(&plain, &cfg);
        rows.push(vec![format!("noise channel: {label}"), format!("{f1:.1}"), n.to_string()]);
    }

    // --- fluency-reranker n-gram order ---
    for order in [1usize, 2, 3] {
        let make = move |cfg: UctrConfig| {
            let mut lm = NgramLm::new(order);
            lm.fit(&seed_corpus());
            let generator = NlGenerator::new().with_lm(lm).with_noise(cfg.noise);
            UctrPipeline::new(cfg).with_generator(generator)
        };
        let (f1, n) = eval(&make, &base_cfg);
        rows.push(vec![format!("reranker: {order}-gram LM"), format!("{f1:.1}"), n.to_string()]);
    }
    {
        let make = |cfg: UctrConfig| {
            let generator = NlGenerator::untrained().with_noise(cfg.noise);
            UctrPipeline::new(cfg).with_generator(generator)
        };
        let (f1, n) = eval(&make, &base_cfg);
        rows.push(vec![
            "reranker: untrained (first candidate)".into(),
            format!("{f1:.1}"),
            n.to_string(),
        ]);
    }

    // --- synthetic volume per table ---
    for spt in [2usize, 8, 24] {
        let cfg = UctrConfig { samples_per_table: spt, ..base_cfg.clone() };
        let (f1, n) = eval(&plain, &cfg);
        rows.push(vec![format!("volume: {spt} samples/table"), format!("{f1:.1}"), n.to_string()]);
    }

    // --- auto-generated templates (paper future work, uctr::autogen) ---
    {
        let (f1, n) = eval(&plain, &base_cfg);
        rows.push(vec!["templates: builtin bank".into(), format!("{f1:.1}"), n.to_string()]);
        let mut bank0 = TemplateBank::builtin();
        let added = extend_bank_auto(&mut bank0, 16, &probe(), 41);
        let make = move |cfg: UctrConfig| {
            let mut bank = TemplateBank::builtin();
            extend_bank_auto(&mut bank, 16, &probe(), 41);
            UctrPipeline::new(cfg).with_bank(bank)
        };
        let (f1, n) = eval(&make, &base_cfg);
        rows.push(vec![
            format!("templates: builtin + {added} auto-generated"),
            format!("{f1:.1}"),
            n.to_string(),
        ]);
    }

    print_table(
        "Design ablations — SEM-TAB-FACTS-like dev micro-F1 by pipeline configuration",
        &["Configuration", "Dev micro-F1", "#synthetic"],
        &rows,
    );
    println!("\nReading guide: all configurations land within a few F1 points of each other");
    println!("— the verifier's accuracy is carried by the verification-signal features, so");
    println!("the generator's surface choices (noise rate, reranker order) move the needle");
    println!("far less than on neural encoders, and even tripled data volume saturates");
    println!("quickly. Auto-generated templates hold F1 while widening reasoning coverage.");
}
