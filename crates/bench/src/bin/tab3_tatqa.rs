//! Reproduces **Table III**: results on the development set of TAT-QA
//! (EM/F1 by evidence type; supervised, unsupervised and few-shot rows).
//!
//! Paper reference values (Total EM/F1): Text-Span only 14.0/20.9,
//! Table-Cell only 11.9/16.9, TAPAS 18.9/26.5, TAGOP 55.5/62.9;
//! MQA-QG 19.4/27.7, UCTR -w/o T2T 32.8/40.5, UCTR 34.9/42.4;
//! few-shot TAGOP 8.3/12.1, TAGOP+UCTR 47.7/55.4.

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{few_shot, pretrain_finetune_qa, print_table, restrict_all};
use corpora::{tatqa_like, CorpusConfig};
use models::{CandidateSpace, EvidenceView, QaModel, TrainConfig};
use uctr::{generate_mqaqg, MqaQgConfig, UctrConfig, UctrPipeline};

fn row(name: &str, model: &QaModel, dev: &[uctr::Sample]) -> Vec<String> {
    row_view(name, model, dev, None)
}

/// Evidence-restricted baselines cannot see the hidden modality at test
/// time either (their architecture lacks the input).
fn row_view(
    name: &str,
    model: &QaModel,
    dev: &[uctr::Sample],
    view: Option<EvidenceView>,
) -> Vec<String> {
    let dev_view: Vec<uctr::Sample> = match view {
        Some(v) => restrict_all(dev, v),
        None => dev.to_vec(),
    };
    let b = qa_breakdown_original_evidence(model, dev, &dev_view);
    let mut cells = vec![name.to_string()];
    for (_, em, f1) in &b {
        cells.push(format!("{em:.1} / {f1:.1}"));
    }
    cells
}

/// Like `bench::qa_breakdown`, but groups by the ORIGINAL sample's evidence
/// type while predicting on the (possibly restricted) view.
fn qa_breakdown_original_evidence(
    model: &QaModel,
    original: &[uctr::Sample],
    view: &[uctr::Sample],
) -> Vec<(String, f64, f64)> {
    use models::em_f1;
    let mut rows = Vec::new();
    let mut all_pairs = Vec::new();
    for ev in
        [uctr::EvidenceType::TableOnly, uctr::EvidenceType::TableText, uctr::EvidenceType::TextOnly]
    {
        let pairs: Vec<(String, String)> = original
            .iter()
            .zip(view)
            .filter(|(o, _)| o.evidence == ev)
            .filter_map(|(o, v)| Some((model.predict(v), o.label.as_answer()?.to_string())))
            .collect();
        let (em, f1) = em_f1(&pairs);
        all_pairs.extend(pairs);
        rows.push((ev.to_string(), em, f1));
    }
    let (em, f1) = em_f1(&all_pairs);
    rows.push(("Total".to_string(), em, f1));
    rows
}

fn main() {
    let bench = tatqa_like(CorpusConfig::default());
    let dev = &bench.gold.dev;
    println!(
        "TAT-QA-like benchmark: {} train / {} dev gold samples, {} unlabeled tables",
        bench.gold.train.len(),
        dev.len(),
        bench.unlabeled.len()
    );

    // --- supervised models ---
    let text_span_only =
        QaModel::train(&restrict_all(&bench.gold.train, EvidenceView::SentenceOnly));
    let table_cell_only = QaModel::train(&restrict_all(&bench.gold.train, EvidenceView::TableOnly));
    let tapas = QaModel::train_in_space(
        &bench.gold.train,
        TrainConfig { epochs: 8, ..TrainConfig::default() },
        CandidateSpace::CellsAndAggs,
    );
    let tagop = QaModel::train(&bench.gold.train);

    // --- unsupervised models ---
    let mqa_data = generate_mqaqg(&bench.unlabeled, &MqaQgConfig::qa());
    let mqaqg = QaModel::train(&mqa_data);
    // The paper generates 23,933 synthetic samples for TAT-QA.
    let uctr_full_data =
        UctrPipeline::new(UctrConfig { samples_per_table: 16, ..UctrConfig::qa() })
            .generate(&bench.unlabeled);
    let uctr_model = QaModel::train(&uctr_full_data);
    let uctr_no_t2t_data =
        UctrPipeline::new(UctrConfig { samples_per_table: 16, ..UctrConfig::qa() }.without_t2t())
            .generate(&bench.unlabeled);
    let uctr_no_t2t = QaModel::train(&uctr_no_t2t_data);

    // --- few-shot ---
    let shots = few_shot(&bench.gold.train, 50);
    let tagop_few = QaModel::train(&shots);
    let tagop_uctr = pretrain_finetune_qa(&uctr_full_data, &shots);

    let header = ["Model", "Table EM/F1", "Table-Text EM/F1", "Text EM/F1", "Total EM/F1"];
    let rows = vec![
        row_view(
            "Supervised: Text-Span only  (paper 14.0/20.9)",
            &text_span_only,
            dev,
            Some(EvidenceView::SentenceOnly),
        ),
        row_view(
            "Supervised: Table-Cell only (paper 11.9/16.9)",
            &table_cell_only,
            dev,
            Some(EvidenceView::TableOnly),
        ),
        row("Supervised: TAPAS           (paper 18.9/26.5)", &tapas, dev),
        row("Supervised: TAGOP           (paper 55.5/62.9)", &tagop, dev),
        row("Unsup: MQA-QG               (paper 19.4/27.7)", &mqaqg, dev),
        row("Unsup: UCTR -w/o T2T        (paper 32.8/40.5)", &uctr_no_t2t, dev),
        row("Unsup: UCTR (ours)          (paper 34.9/42.4)", &uctr_model, dev),
        row("Few-shot: TAGOP             (paper  8.3/12.1)", &tagop_few, dev),
        row("Few-shot: TAGOP+UCTR        (paper 47.7/55.4)", &tagop_uctr, dev),
    ];
    print_table("Table III — TAT-QA dev (EM / F1)", &header, &rows);
    println!(
        "\nSynthetic data: UCTR {} samples, UCTR -w/o T2T {}, MQA-QG {} (paper: 23,933 UCTR samples).",
        uctr_full_data.len(),
        uctr_no_t2t_data.len(),
        mqa_data.len()
    );
}
