//! Reproduces **Table IV**: results on FEVEROUS (label accuracy on dev,
//! FEVEROUS score on dev and test).
//!
//! Paper reference values: Sentence-only 81.1 acc / 19.0 FS, Table-only
//! 81.6 / 19.1, Full baseline 86.0 / 20.2 (19.2 test); Random 47.0 / 14.1
//! (13.2), MQA-QG 71.1 / 17.6 (16.4), UCTR 74.8 / 18.3 (17.0); few-shot
//! Full 67.3 / 14.2 (13.3), Full+UCTR 75.5 / 17.4 (16.4).

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{few_shot, pretrain_finetune_verifier, print_table, verifier_feverous};
use corpora::{feverous_like, CorpusConfig};
use models::{label_accuracy, EvidenceView, RandomVerifier, VerdictSpace, VerifierModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use uctr::{generate_mqaqg, MqaQgConfig, Sample, UctrConfig, UctrPipeline, Verdict};

/// FEVEROUS practice (paper §V-B, following Malon \[35\]): the tiny NEI slice
/// is dropped and the model predicts Supported/Refuted only.
fn drop_nei(samples: &[Sample]) -> Vec<Sample> {
    samples.iter().filter(|s| s.label.as_verdict() != Some(Verdict::Unknown)).cloned().collect()
}

fn row(name: &str, model: &VerifierModel, dev: &[Sample], test: &[Sample]) -> Vec<String> {
    let (acc, fs_dev) = verifier_feverous(model, dev);
    let (_, fs_test) = verifier_feverous(model, test);
    vec![name.to_string(), format!("{acc:.1}"), format!("{fs_dev:.1}"), format!("{fs_test:.1}")]
}

fn main() {
    let bench = feverous_like(CorpusConfig::default());
    let train = drop_nei(&bench.gold.train);
    let dev = drop_nei(&bench.gold.dev);
    let test = drop_nei(&bench.gold.test);
    println!(
        "FEVEROUS-like benchmark: {} train / {} dev / {} test (NEI dropped), {} unlabeled tables",
        train.len(),
        dev.len(),
        test.len(),
        bench.unlabeled.len()
    );

    // Supervised baselines.
    let sentence_only =
        VerifierModel::train(&train, VerdictSpace::TwoWay, EvidenceView::SentenceOnly);
    let table_only = VerifierModel::train(&train, VerdictSpace::TwoWay, EvidenceView::TableOnly);
    let full = VerifierModel::train(&train, VerdictSpace::TwoWay, EvidenceView::Full);

    // Unsupervised.
    let mut rng = StdRng::seed_from_u64(4);
    let random = RandomVerifier::new(VerdictSpace::TwoWay);
    let random_acc = 100.0 * random.accuracy(&dev, &mut rng);
    let random_preds: Vec<Verdict> = dev.iter().map(|_| random.predict(&mut rng)).collect();
    let random_fs_dev = models::feverous_score(&dev, &random_preds);
    let random_preds_test: Vec<Verdict> = test.iter().map(|_| random.predict(&mut rng)).collect();
    let random_fs_test = models::feverous_score(&test, &random_preds_test);

    let mqa_data = generate_mqaqg(&bench.unlabeled, &MqaQgConfig::verification());
    let mqaqg = VerifierModel::train(&mqa_data, VerdictSpace::TwoWay, EvidenceView::Full);
    let uctr_data = UctrPipeline::new(UctrConfig::verification()).generate(&bench.unlabeled);
    let uctr_model = VerifierModel::train(&uctr_data, VerdictSpace::TwoWay, EvidenceView::Full);

    // Few-shot.
    let shots = few_shot(&train, 50);
    let full_few = VerifierModel::train(&shots, VerdictSpace::TwoWay, EvidenceView::Full);
    let full_uctr = pretrain_finetune_verifier(&uctr_data, &shots, VerdictSpace::TwoWay);

    let header = ["Model", "Dev Accuracy", "Dev FEVEROUS Score", "Test FEVEROUS Score"];
    let rows = vec![
        row("Supervised: Sentence-only (paper 81.1/19.0/18.5)", &sentence_only, &dev, &test),
        row("Supervised: Table-only    (paper 81.6/19.1/17.9)", &table_only, &dev, &test),
        row("Supervised: Full baseline (paper 86.0/20.2/19.2)", &full, &dev, &test),
        vec![
            "Unsup: Random             (paper 47.0/14.1/13.2)".to_string(),
            format!("{random_acc:.1}"),
            format!("{random_fs_dev:.1}"),
            format!("{random_fs_test:.1}"),
        ],
        row("Unsup: MQA-QG             (paper 71.1/17.6/16.4)", &mqaqg, &dev, &test),
        row("Unsup: UCTR (ours)        (paper 74.8/18.3/17.0)", &uctr_model, &dev, &test),
        row("Few-shot: Full baseline   (paper 67.3/14.2/13.3)", &full_few, &dev, &test),
        row("Few-shot: Full+UCTR       (paper 75.5/17.4/16.4)", &full_uctr, &dev, &test),
    ];
    print_table("Table IV — FEVEROUS (accuracy / FEVEROUS score)", &header, &rows);
    let _ = label_accuracy(&[]);
    println!(
        "\nSynthetic data: UCTR {} samples, MQA-QG {} (paper: 79,856 UCTR samples).",
        uctr_data.len(),
        mqa_data.len()
    );
}
