//! Reproduces **Table VII**: data augmentation — the supervised baseline
//! vs. the baseline pretrained on UCTR synthetic data, on all four
//! benchmarks.
//!
//! Paper reference values (dev): TAT-QA 55.5/62.9 → 59.7/67.7 (gain),
//! SEM-TAB-FACTS 66.7 → 69.8 (gain), WikiSQL 88.1 → 87.9 (flat),
//! FEVEROUS 86.0 → 85.9 (flat). The paper's explanation: augmentation
//! helps the low-resource specialized domains (TAT-QA, SEM-TAB-FACTS) and
//! is flat on the table-rich general-domain benchmarks.

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{
    augment_qa, augment_verifier, print_table, qa_em_f1, verifier_feverous, verifier_micro_f1,
};
use corpora::{feverous_like, semtab_like, tatqa_like, wikisql_like, CorpusConfig};
use models::{denotation_accuracy, EvidenceView, QaModel, VerdictSpace, VerifierModel};
use uctr::{Sample, UctrConfig, UctrPipeline, Verdict};

fn denot(model: &QaModel, samples: &[Sample]) -> f64 {
    let pairs: Vec<(String, String)> = samples
        .iter()
        .filter_map(|s| Some((model.predict(s), s.label.as_answer()?.to_string())))
        .collect();
    denotation_accuracy(&pairs)
}

fn drop_nei(samples: &[Sample]) -> Vec<Sample> {
    samples.iter().filter(|s| s.label.as_verdict() != Some(Verdict::Unknown)).cloned().collect()
}

fn main() {
    // Paper scale note (§V-D): TAT-QA and SEM-TAB-FACTS have far fewer
    // tables than FEVEROUS/WikiSQL; we mirror that with a smaller table
    // budget for the specialized domains.
    let low_resource =
        CorpusConfig { n_tables: 40, train_per_table: 3, eval_per_table: 16, seed: 2023 };
    let high_resource =
        CorpusConfig { n_tables: 160, train_per_table: 10, eval_per_table: 16, seed: 2023 };

    let mut rows: Vec<Vec<String>> = Vec::new();

    // --- TAT-QA (EM/F1) ---
    {
        let b = tatqa_like(low_resource);
        let synth = UctrPipeline::new(UctrConfig::qa()).generate(&b.unlabeled);
        let baseline = QaModel::train(&b.gold.train);
        let augmented = augment_qa(&synth, &b.gold.train);
        let (em_b, f1_b) = qa_em_f1(&baseline, &b.gold.dev);
        let (em_a, f1_a) = qa_em_f1(&augmented, &b.gold.dev);
        let (em_bt, f1_bt) = qa_em_f1(&baseline, &b.gold.test);
        let (em_at, f1_at) = qa_em_f1(&augmented, &b.gold.test);
        rows.push(vec![
            "TAT-QA EM/F1       (paper dev 55.5/62.9 -> 59.7/67.7)".into(),
            format!("{em_b:.1}/{f1_b:.1} -> {em_a:.1}/{f1_a:.1}"),
            format!("{em_bt:.1}/{f1_bt:.1} -> {em_at:.1}/{f1_at:.1}"),
        ]);
    }

    // --- SEM-TAB-FACTS (micro F1) ---
    {
        let b = semtab_like(low_resource);
        let synth =
            UctrPipeline::new(UctrConfig { unknown_rate: 0.06, ..UctrConfig::verification() })
                .generate(&b.unlabeled);
        let baseline =
            VerifierModel::train(&b.gold.train, VerdictSpace::ThreeWay, EvidenceView::Full);
        let augmented = augment_verifier(&synth, &b.gold.train, VerdictSpace::ThreeWay);
        rows.push(vec![
            "SEM-TAB-FACTS F1   (paper dev 66.7 -> 69.8)".into(),
            format!(
                "{:.1} -> {:.1}",
                verifier_micro_f1(&baseline, &b.gold.dev),
                verifier_micro_f1(&augmented, &b.gold.dev)
            ),
            format!(
                "{:.1} -> {:.1}",
                verifier_micro_f1(&baseline, &b.gold.test),
                verifier_micro_f1(&augmented, &b.gold.test)
            ),
        ]);
    }

    // --- WikiSQL (denotation accuracy) ---
    {
        let b = wikisql_like(high_resource);
        let synth = UctrPipeline::new(UctrConfig { use_arith: false, ..UctrConfig::qa() })
            .generate(&b.unlabeled);
        let baseline = QaModel::train(&b.gold.train);
        let augmented = augment_qa(&synth, &b.gold.train);
        rows.push(vec![
            "WikiSQL denot. acc (paper dev 88.1 -> 87.9)".into(),
            format!(
                "{:.1} -> {:.1}",
                denot(&baseline, &b.gold.dev),
                denot(&augmented, &b.gold.dev)
            ),
            format!(
                "{:.1} -> {:.1}",
                denot(&baseline, &b.gold.test),
                denot(&augmented, &b.gold.test)
            ),
        ]);
    }

    // --- FEVEROUS (label accuracy) ---
    {
        let b = feverous_like(high_resource);
        let train = drop_nei(&b.gold.train);
        let dev = drop_nei(&b.gold.dev);
        let synth = UctrPipeline::new(UctrConfig::verification()).generate(&b.unlabeled);
        let baseline = VerifierModel::train(&train, VerdictSpace::TwoWay, EvidenceView::Full);
        let augmented = augment_verifier(&synth, &train, VerdictSpace::TwoWay);
        let (acc_b, _) = verifier_feverous(&baseline, &dev);
        let (acc_a, _) = verifier_feverous(&augmented, &dev);
        rows.push(vec![
            "FEVEROUS accuracy  (paper dev 86.0 -> 85.9)".into(),
            format!("{acc_b:.1} -> {acc_a:.1}"),
            "-".into(),
        ]);
    }

    print_table(
        "Table VII — data augmentation (baseline -> baseline+UCTR)",
        &["Benchmark", "Dev", "Test"],
        &rows,
    );
    println!("\nExpected shape: gains on the low-resource specialized domains (TAT-QA,");
    println!("SEM-TAB-FACTS), roughly flat on the table-rich general domains (WikiSQL, FEVEROUS).");
}
