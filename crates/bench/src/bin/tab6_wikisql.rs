//! Reproduces **Table VI**: WikiSQL denotation accuracy (dev and test).
//!
//! Paper reference values: TAPAS 85.1/83.6, TAPEX 88.1/87.0 supervised;
//! TAPEX no-fine-tuning 21.4/21.8, MQA-QG 57.8/57.2, UCTR 62.2/61.6;
//! few-shot TAPEX 53.8/52.9, TAPEX+UCTR 62.3/61.6.

// Reporting binary: stdout tables are the product, and unwrap aborts the report on malformed input.
#![allow(clippy::unwrap_used, clippy::print_stdout, clippy::print_stderr)]

use bench::{few_shot, pretrain_finetune_qa, print_table};
use corpora::{wikisql_like, CorpusConfig};
use models::{denotation_accuracy, CandidateSpace, QaModel, TrainConfig};
use uctr::{generate_mqaqg, MqaQgConfig, Sample, UctrConfig, UctrPipeline};

fn denot(model: &QaModel, samples: &[Sample]) -> f64 {
    let pairs: Vec<(String, String)> = samples
        .iter()
        .filter_map(|s| Some((model.predict(s), s.label.as_answer()?.to_string())))
        .collect();
    denotation_accuracy(&pairs)
}

fn row(name: &str, model: &QaModel, dev: &[Sample], test: &[Sample]) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.1}", denot(model, dev)),
        format!("{:.1}", denot(model, test)),
    ]
}

fn main() {
    let bench = wikisql_like(CorpusConfig::default());
    let dev = &bench.gold.dev;
    let test = &bench.gold.test;
    println!(
        "WikiSQL-like benchmark: {} train / {} dev / {} test, {} unlabeled tables",
        bench.gold.train.len(),
        dev.len(),
        test.len(),
        bench.unlabeled.len()
    );

    // Supervised: TAPAS (cell-selection space) and TAPEX (full).
    let tapas = QaModel::train_in_space(
        &bench.gold.train,
        TrainConfig { epochs: 8, ..TrainConfig::default() },
        CandidateSpace::CellsAndAggs,
    );
    let tapex = QaModel::train(&bench.gold.train);

    // Unsupervised: TAPEX without fine-tuning, MQA-QG, UCTR (SQL programs,
    // per §V-B WikiSQL uses SQL queries only).
    let tapex_raw = QaModel::untrained();
    let mqa_data = generate_mqaqg(&bench.unlabeled, &MqaQgConfig::qa());
    let mqaqg = QaModel::train(&mqa_data);
    // The paper generates 27k synthetic samples for WikiSQL; sample each
    // unlabeled table heavily.
    let uctr_data = UctrPipeline::new(UctrConfig {
        use_arith: false,
        samples_per_table: 24,
        ..UctrConfig::qa()
    })
    .generate(&bench.unlabeled);
    let uctr_model = QaModel::train(&uctr_data);

    // Few-shot.
    let shots = few_shot(&bench.gold.train, 50);
    let tapex_few = QaModel::train(&shots);
    let tapex_uctr = pretrain_finetune_qa(&uctr_data, &shots);

    let header = ["Model", "Dev denotation acc", "Test denotation acc"];
    let rows = vec![
        row("Supervised: TAPAS        (paper 85.1/83.6)", &tapas, dev, test),
        row("Supervised: TAPEX        (paper 88.1/87.0)", &tapex, dev, test),
        row("Unsup: TAPEX (no train)  (paper 21.4/21.8)", &tapex_raw, dev, test),
        row("Unsup: MQA-QG            (paper 57.8/57.2)", &mqaqg, dev, test),
        row("Unsup: UCTR (ours)       (paper 62.2/61.6)", &uctr_model, dev, test),
        row("Few-shot: TAPEX          (paper 53.8/52.9)", &tapex_few, dev, test),
        row("Few-shot: TAPEX+UCTR     (paper 62.3/61.6)", &tapex_uctr, dev, test),
    ];
    print_table("Table VI — WikiSQL (denotation accuracy)", &header, &rows);
    println!(
        "\nSynthetic data: UCTR {} samples, MQA-QG {} (paper: 27,365 UCTR samples).",
        uctr_data.len(),
        mqa_data.len()
    );
}
