//! A deterministic, deliberately *ragged* table zoo.
//!
//! The zoo is the fixed workload behind `bench_pipeline` (the throughput
//! trajectory in `BENCH_pipeline.json`) and the thread-sweep determinism
//! tests: families are clustered in input order — degenerate tables first,
//! then tiny, then big, then split-heavy, then expansion-heavy — so a
//! static contiguous sharding of the inputs is maximally imbalanced and a
//! load-balancing scheduler has something to win. Content is derived from a
//! fixed seed; two calls with the same `scale` produce identical inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabular::Table;
use uctr::TableWithContext;

const NAMES: &[&str] = &[
    "Alder", "Birch", "Cedar", "Dahlia", "Elm", "Fern", "Ginkgo", "Hazel", "Iris", "Juniper",
    "Laurel", "Maple", "Nettle", "Oak", "Poplar", "Quince", "Rowan", "Sage", "Tulip", "Umber",
    "Violet", "Willow", "Yarrow", "Zinnia",
];
const GROUPS: &[&str] =
    &["north", "south", "east", "west", "central", "coastal", "alpine", "plains"];

fn grid_table(title: &str, grid: &[Vec<String>]) -> Table {
    let borrowed: Vec<Vec<&str>> =
        grid.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
    Table::from_strings(title, &borrowed).unwrap_or_else(|e| panic!("zoo table {title}: {e}"))
}

/// `rows`-row table: entity text column, a low-cardinality group column, and
/// three numeric columns (one with sprinkled nulls). The group and score
/// columns repeat values, so `distinct`-style dedup has real work to do.
fn stats_table(rng: &mut StdRng, title: &str, rows: usize) -> Table {
    let mut grid: Vec<Vec<String>> =
        vec![vec!["name".into(), "region".into(), "score".into(), "games".into(), "margin".into()]];
    for r in 0..rows {
        let name = format!("{} {}", NAMES[rng.gen_range(0..NAMES.len())], r);
        let region = GROUPS[rng.gen_range(0..GROUPS.len())].to_string();
        let score = rng.gen_range(10..95).to_string();
        let games = if rng.gen_range(0..12) == 0 {
            String::new() // null cell
        } else {
            rng.gen_range(1..40).to_string()
        };
        let margin = rng.gen_range(-20..60).to_string();
        grid.push(vec![name, region, score, games, margin]);
    }
    grid_table(title, &grid)
}

/// Small 3-column table (entity + two numerics) whose paragraph describes an
/// entity *not* in the table — the Text-To-Table integration succeeds, so
/// every attempt on it exercises the table-expansion path.
fn expandable_table(rng: &mut StdRng, title: &str, rows: usize) -> TableWithContext {
    let mut grid: Vec<Vec<String>> = vec![vec!["name".into(), "points".into(), "wins".into()]];
    for r in 0..rows {
        grid.push(vec![
            format!("{} {}", NAMES[rng.gen_range(0..NAMES.len())], r),
            rng.gen_range(20..90).to_string(),
            rng.gen_range(0..30).to_string(),
        ]);
    }
    let table = grid_table(title, &grid);
    let paragraph = format!(
        "The season ran long. Newcomer {} has a points of {} and a wins of {}. Attendance rose.",
        rng.gen_range(100..999),
        rng.gen_range(20..90),
        rng.gen_range(0..30),
    );
    TableWithContext { table: table.into(), paragraph: Some(paragraph), topic: "zoo-expand".into() }
}

/// Builds the ragged zoo. `scale` multiplies every family's population;
/// `scale = 1` yields 18 inputs (the test workload), the bench runner uses
/// a larger scale. Families appear clustered in this order:
///
/// 1. degenerate (no rows / no columns) — free inputs,
/// 2. tiny 3–5-row tables,
/// 3. big 160–224-row tables — the expensive shard,
/// 4. split-heavy 24–40-row tables (no paragraph),
/// 5. expansion-heavy tables with an integrable paragraph.
pub fn ragged_zoo(scale: usize) -> Vec<TableWithContext> {
    let scale = scale.max(1);
    let mut rng = StdRng::seed_from_u64(0x2003);
    let mut out: Vec<TableWithContext> = Vec::new();

    for k in 0..2 * scale {
        // Header-only and fully empty tables: the pipeline must skip these
        // as degenerate without burning attempts.
        let t = if k % 2 == 0 {
            grid_table(&format!("empty {k}"), &[vec!["a".into(), "b".into()]])
        } else {
            grid_table(&format!("void {k}"), &[])
        };
        out.push(TableWithContext::bare(t));
    }
    for k in 0..6 * scale {
        let rows = 3 + (k % 3);
        out.push(TableWithContext::bare(stats_table(&mut rng, &format!("tiny {k}"), rows)));
    }
    for k in 0..2 * scale {
        let rows = 160 + 64 * (k % 2);
        out.push(TableWithContext::bare(stats_table(&mut rng, &format!("big {k}"), rows)));
    }
    for k in 0..4 * scale {
        let rows = 24 + 4 * (k % 5);
        out.push(TableWithContext::bare(stats_table(&mut rng, &format!("split {k}"), rows)));
    }
    for k in 0..4 * scale {
        let rows = 8 + (k % 5);
        out.push(expandable_table(&mut rng, &format!("expand {k}"), rows));
    }
    out
}

/// `rows`-row, `numeric_cols + 2`-column table for the stress tier: entity
/// text column, a low-cardinality group column, then a wide band of numeric
/// metric columns with sprinkled nulls. Wide schemas push the columnar
/// kernels (per-column numeric gathers, schema scans) much harder than the
/// 5-column ragged-zoo shape.
fn wide_table(rng: &mut StdRng, title: &str, rows: usize, numeric_cols: usize) -> Table {
    let mut header: Vec<String> = vec!["name".into(), "region".into()];
    header.extend((0..numeric_cols).map(|c| format!("metric {c}")));
    let mut grid: Vec<Vec<String>> = vec![header];
    for r in 0..rows {
        let mut row: Vec<String> = Vec::with_capacity(numeric_cols + 2);
        row.push(format!("{} {}", NAMES[rng.gen_range(0..NAMES.len())], r));
        row.push(GROUPS[rng.gen_range(0..GROUPS.len())].to_string());
        for _ in 0..numeric_cols {
            if rng.gen_range(0..16) == 0 {
                row.push(String::new()); // null cell
            } else {
                row.push(rng.gen_range(-500..9500).to_string());
            }
        }
        grid.push(row);
    }
    grid_table(title, &grid)
}

/// The large-table stress tier: `2 * scale` tables of 10k+ rows with wide
/// (14–18 column) schemas. Deterministic like [`ragged_zoo`], but sized so
/// per-sample costs that are invisible on small tables — context scans,
/// split-evidence sub-table clones, column gathers — dominate the profile.
/// `bench_pipeline` times it separately and gates it with its own
/// one-sided floor (`bench_stress_samples_per_sec`).
pub fn stress_zoo(scale: usize) -> Vec<TableWithContext> {
    let scale = scale.max(1);
    let mut rng = StdRng::seed_from_u64(0x57E5);
    let mut out: Vec<TableWithContext> = Vec::new();
    for k in 0..2 * scale {
        let rows = 10_000 + 2_000 * (k % 2);
        let numeric_cols = 12 + 4 * (k % 2);
        out.push(TableWithContext::bare(wide_table(
            &mut rng,
            &format!("stress {k}"),
            rows,
            numeric_cols,
        )));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_is_deterministic_and_family_clustered() {
        let a = ragged_zoo(1);
        let b = ragged_zoo(1);
        assert_eq!(a.len(), 18);
        assert_eq!(b.len(), a.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.table, y.table);
            assert_eq!(x.paragraph, y.paragraph);
        }
        // Degenerate inputs lead, expansion paragraphs trail.
        assert_eq!(a[0].table.n_rows(), 0);
        assert!(a[a.len() - 1].paragraph.is_some());
        assert!(a.iter().any(|t| t.table.n_rows() >= 160), "zoo lost its big shard");
    }

    #[test]
    fn zoo_scales_every_family() {
        assert_eq!(ragged_zoo(3).len(), 3 * 18);
    }

    #[test]
    fn stress_zoo_is_large_wide_and_deterministic() {
        let a = stress_zoo(1);
        let b = stress_zoo(1);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.table, y.table);
        }
        for input in &a {
            assert!(input.table.n_rows() >= 10_000, "stress table lost its row count");
            assert!(input.table.n_cols() >= 14, "stress table lost its width");
        }
    }

    #[test]
    fn expandable_paragraphs_integrate() {
        for input in ragged_zoo(1).iter().filter(|t| t.paragraph.is_some()) {
            let p = input.paragraph.as_deref().unwrap_or_default();
            assert!(
                textops::text_to_table(&input.table, p).is_some(),
                "paragraph failed to integrate for {}",
                input.table.title
            );
        }
    }
}
