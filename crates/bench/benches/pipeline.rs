//! Criterion benchmarks for the end-to-end UCTR pipeline and its operators:
//! table splitting, table expansion, and full Algorithm 1 throughput, plus
//! ablation variants of the design choices DESIGN.md flags (noise channel,
//! T2T operators).

// Criterion harness setup; failures should abort the benchmark loudly.
#![allow(clippy::unwrap_used)]

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use nlgen::NoiseConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabular::Table;
use uctr::{TableWithContext, UctrConfig, UctrPipeline};

fn inputs() -> Vec<TableWithContext> {
    let t1 = Table::from_strings(
        "Teams",
        &[
            vec!["team", "city", "points", "wins"],
            vec!["Reds", "Oslo", "77", "21"],
            vec!["Blues", "Lima", "64", "18"],
            vec!["Greens", "Kyiv", "81", "24"],
            vec!["Golds", "Quito", "59", "15"],
        ],
    )
    .unwrap();
    vec![TableWithContext {
        table: t1.into(),
        paragraph: Some("Silvers has a city of Rome, a points of 70 and a wins of 19.".to_string()),
        topic: "sports".into(),
    }]
}

fn bench_operators(c: &mut Criterion) {
    let input = inputs().remove(0);
    c.bench_function("textops/table_to_text", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(textops::table_to_text(&input.table, 1, &mut rng)))
    });
    c.bench_function("textops/text_to_table", |b| {
        b.iter(|| {
            black_box(textops::text_to_table(&input.table, input.paragraph.as_deref().unwrap()))
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let data = inputs();
    c.bench_function("pipeline/qa_per_table", |b| {
        b.iter_batched(
            || UctrPipeline::new(UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() }),
            |p| black_box(p.generate(&data)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("pipeline/verification_per_table", |b| {
        b.iter_batched(
            || {
                UctrPipeline::new(UctrConfig {
                    noise: NoiseConfig::off(),
                    ..UctrConfig::verification()
                })
            },
            |p| black_box(p.generate(&data)),
            BatchSize::SmallInput,
        )
    });
    // Design-choice ablation: the T2T operators' cost share.
    c.bench_function("pipeline/qa_without_t2t", |b| {
        b.iter_batched(
            || {
                UctrPipeline::new(
                    UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() }.without_t2t(),
                )
            },
            |p| black_box(p.generate(&data)),
            BatchSize::SmallInput,
        )
    });
    // Design-choice ablation: noise channel cost.
    c.bench_function("pipeline/qa_with_noise", |b| {
        b.iter_batched(
            || UctrPipeline::new(UctrConfig::qa()),
            |p| black_box(p.generate(&data)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_operators, bench_pipeline);
criterion_main!(benches);
