//! Criterion micro-benchmarks for the three program executors (the
//! Program-Executor module): SQL parse/execute, logical-form evaluation,
//! and arithmetic-expression execution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tabular::Table;

fn sample_table() -> Table {
    let mut grid: Vec<Vec<String>> =
        vec![vec!["team".into(), "city".into(), "points".into(), "wins".into(), "losses".into()]];
    for i in 0..64 {
        grid.push(vec![
            format!("Team{i}"),
            format!("City{}", i % 12),
            format!("{}", 20 + (i * 7) % 80),
            format!("{}", (i * 3) % 30),
            format!("{}", (i * 5) % 20),
        ]);
    }
    let borrowed: Vec<Vec<&str>> =
        grid.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
    Table::from_strings("standings", &borrowed).unwrap()
}

fn bench_sql(c: &mut Criterion) {
    let table = sample_table();
    let queries = [
        "select [team] from w order by [points] desc limit 1",
        "select count(*) from w where [points] > 50 and [wins] < 20",
        "select sum([points]) from w where [city] = 'City3'",
        "select [team], count(*) from w group by [city]",
    ];
    c.bench_function("sql/parse", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(sqlexec::parse(q).unwrap());
            }
        })
    });
    let stmts: Vec<_> = queries.iter().map(|q| sqlexec::parse(q).unwrap()).collect();
    c.bench_function("sql/execute_64rows", |b| {
        b.iter(|| {
            for s in &stmts {
                black_box(sqlexec::execute(s, &table).unwrap());
            }
        })
    });
}

fn bench_logic(c: &mut Criterion) {
    let table = sample_table();
    let forms = [
        "eq { hop { argmax { all_rows ; points } ; team } ; Team5 }",
        "most_greater { all_rows ; points ; 40 }",
        "eq { count { filter_eq { all_rows ; city ; City3 } } ; 6 }",
        "round_eq { avg { all_rows ; wins } ; 14.5 }",
    ];
    let exprs: Vec<_> = forms.iter().map(|f| logicforms::parse(f).unwrap()).collect();
    c.bench_function("logic/parse", |b| {
        b.iter(|| {
            for f in &forms {
                black_box(logicforms::parse(f).unwrap());
            }
        })
    });
    c.bench_function("logic/evaluate_64rows", |b| {
        b.iter(|| {
            for e in &exprs {
                black_box(logicforms::evaluate(e, &table).unwrap());
            }
        })
    });
}

fn bench_arith(c: &mut Criterion) {
    let table = Table::from_strings(
        "fin",
        &[
            vec!["item", "2019", "2018"],
            vec!["Revenue", "8800", "8000"],
            vec!["Costs", "6100", "5900"],
            vec!["Equity", "3200", "4000"],
        ],
    )
    .unwrap();
    let programs = [
        "subtract( the 2019 of Revenue , the 2018 of Revenue ), divide( #0 , the 2018 of Revenue )",
        "table_sum( 2019 ) , divide( the 2019 of Costs , #0 )",
        "greater( the 2019 of Equity , the 2018 of Equity )",
    ];
    let parsed: Vec<_> = programs.iter().map(|p| arithexpr::parse(p).unwrap()).collect();
    c.bench_function("arith/parse", |b| {
        b.iter(|| {
            for p in &programs {
                black_box(arithexpr::parse(p).unwrap());
            }
        })
    });
    c.bench_function("arith/execute", |b| {
        b.iter(|| {
            for p in &parsed {
                black_box(arithexpr::execute(p, &table).unwrap());
            }
        })
    });
}

criterion_group!(benches, bench_sql, bench_logic, bench_arith);
criterion_main!(benches);
