//! Criterion micro-benchmarks for the three program executors (the
//! Program-Executor module): SQL parse/execute, logical-form evaluation,
//! and arithmetic-expression execution.

// Criterion harness setup; failures should abort the benchmark loudly.
#![allow(clippy::unwrap_used)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tabular::{ExecContext, Table};

fn sample_table() -> Table {
    sized_table(64)
}

fn sized_table(rows: usize) -> Table {
    let mut grid: Vec<Vec<String>> =
        vec![vec!["team".into(), "city".into(), "points".into(), "wins".into(), "losses".into()]];
    for i in 0..rows {
        grid.push(vec![
            format!("Team{i}"),
            format!("City{}", i % 12),
            format!("{}", 20 + (i * 7) % 80),
            format!("{}", (i * 3) % 30),
            format!("{}", (i * 5) % 20),
        ]);
    }
    let borrowed: Vec<Vec<&str>> =
        grid.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
    Table::from_strings("standings", &borrowed).unwrap()
}

fn bench_sql(c: &mut Criterion) {
    let table = sample_table();
    let queries = [
        "select [team] from w order by [points] desc limit 1",
        "select count(*) from w where [points] > 50 and [wins] < 20",
        "select sum([points]) from w where [city] = 'City3'",
        "select [team], count(*) from w group by [city]",
    ];
    c.bench_function("sql/parse", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(sqlexec::parse(q).unwrap());
            }
        })
    });
    let stmts: Vec<_> = queries.iter().map(|q| sqlexec::parse(q).unwrap()).collect();
    c.bench_function("sql/execute_64rows", |b| {
        b.iter(|| {
            for s in &stmts {
                black_box(sqlexec::execute(s, &table).unwrap());
            }
        })
    });
}

fn bench_logic(c: &mut Criterion) {
    let table = sample_table();
    let forms = [
        "eq { hop { argmax { all_rows ; points } ; team } ; Team5 }",
        "most_greater { all_rows ; points ; 40 }",
        "eq { count { filter_eq { all_rows ; city ; City3 } } ; 6 }",
        "round_eq { avg { all_rows ; wins } ; 14.5 }",
    ];
    let exprs: Vec<_> = forms.iter().map(|f| logicforms::parse(f).unwrap()).collect();
    c.bench_function("logic/parse", |b| {
        b.iter(|| {
            for f in &forms {
                black_box(logicforms::parse(f).unwrap());
            }
        })
    });
    c.bench_function("logic/evaluate_64rows", |b| {
        b.iter(|| {
            for e in &exprs {
                black_box(logicforms::evaluate(e, &table).unwrap());
            }
        })
    });
}

fn bench_arith(c: &mut Criterion) {
    let table = Table::from_strings(
        "fin",
        &[
            vec!["item", "2019", "2018"],
            vec!["Revenue", "8800", "8000"],
            vec!["Costs", "6100", "5900"],
            vec!["Equity", "3200", "4000"],
        ],
    )
    .unwrap();
    let programs = [
        "subtract( the 2019 of Revenue , the 2018 of Revenue ), divide( #0 , the 2018 of Revenue )",
        "table_sum( 2019 ) , divide( the 2019 of Costs , #0 )",
        "greater( the 2019 of Equity , the 2018 of Equity )",
    ];
    let parsed: Vec<_> = programs.iter().map(|p| arithexpr::parse(p).unwrap()).collect();
    c.bench_function("arith/parse", |b| {
        b.iter(|| {
            for p in &programs {
                black_box(arithexpr::parse(p).unwrap());
            }
        })
    });
    c.bench_function("arith/execute", |b| {
        b.iter(|| {
            for p in &parsed {
                black_box(arithexpr::execute(p, &table).unwrap());
            }
        })
    });
}

/// ExecContext vs naive scans on a 128-row table: the per-table caches must
/// measurably beat re-scanning per program on tables ≥ 100 rows (the
/// ExecContext acceptance criterion).
fn bench_exec_context(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let table = sized_table(128);
    let ctx = ExecContext::new(&table);

    c.bench_function("ctx/build_128rows", |b| {
        b.iter(|| black_box(ExecContext::new(black_box(&table))))
    });

    let forms = [
        "eq { max { all_rows ; points } ; 99 }",
        "round_eq { avg { all_rows ; wins } ; 14.5 }",
        "round_eq { sum { all_rows ; losses } ; 1216 }",
        "eq { nth_max { all_rows ; points ; 3 } ; 97 }",
    ];
    let exprs: Vec<_> = forms.iter().map(|f| logicforms::parse(f).unwrap()).collect();
    c.bench_function("logic/evaluate_128rows_naive", |b| {
        b.iter(|| {
            for e in &exprs {
                black_box(logicforms::evaluate(e, &table).unwrap());
            }
        })
    });
    c.bench_function("logic/evaluate_128rows_ctx", |b| {
        b.iter(|| {
            for e in &exprs {
                black_box(logicforms::evaluate_in(e, &table, &ctx).unwrap());
            }
        })
    });

    let programs = [
        "table_sum( points ) , divide( the points of Team3 , #0 )",
        "table_average( wins )",
        "table_max( points ) , table_min( points ) , subtract( #0 , #1 )",
    ];
    let parsed: Vec<_> = programs.iter().map(|p| arithexpr::parse(p).unwrap()).collect();
    c.bench_function("arith/execute_128rows_naive", |b| {
        b.iter(|| {
            for p in &parsed {
                black_box(arithexpr::execute(p, &table).unwrap());
            }
        })
    });
    c.bench_function("arith/execute_128rows_ctx", |b| {
        b.iter(|| {
            for p in &parsed {
                black_box(arithexpr::execute_in(p, &table, &ctx).unwrap());
            }
        })
    });

    let tpl =
        sqlexec::SqlTemplate::parse("select c1 from w where c2 = val1 and c3 = val2").unwrap();
    c.bench_function("sql/instantiate_128rows_naive", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| black_box(tpl.try_instantiate(&table, &mut rng)))
    });
    c.bench_function("sql/instantiate_128rows_ctx", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| black_box(tpl.try_instantiate_in(&table, &ctx, &mut rng)))
    });

    let lf_tpl =
        logicforms::LfTemplate::parse("eq { count { filter_eq { all_rows ; c1 ; val1 } } ; val2 }")
            .unwrap();
    c.bench_function("logic/instantiate_128rows_naive", |b| {
        let mut rng = StdRng::seed_from_u64(12);
        b.iter(|| black_box(lf_tpl.try_instantiate(&table, &mut rng, true)))
    });
    c.bench_function("logic/instantiate_128rows_ctx", |b| {
        let mut rng = StdRng::seed_from_u64(12);
        b.iter(|| black_box(lf_tpl.try_instantiate_in(&table, &ctx, &mut rng, true)))
    });

    let ae_tpl = arithexpr::AeTemplate::parse("table_sum( c1 ) , divide( val1 , #0 )").unwrap();
    c.bench_function("arith/instantiate_128rows_naive", |b| {
        let mut rng = StdRng::seed_from_u64(13);
        b.iter(|| black_box(ae_tpl.try_instantiate(&table, &mut rng)))
    });
    c.bench_function("arith/instantiate_128rows_ctx", |b| {
        let mut rng = StdRng::seed_from_u64(13);
        b.iter(|| black_box(ae_tpl.try_instantiate_in(&table, &ctx, &mut rng)))
    });
}

criterion_group!(benches, bench_sql, bench_logic, bench_arith, bench_exec_context);
criterion_main!(benches);
