//! Criterion micro-benchmarks for the NL-Generator: per-program-type
//! realization, LM scoring, and template instantiation throughput.

// Criterion harness setup; failures should abort the benchmark loudly.
#![allow(clippy::unwrap_used)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nlgen::{NgramLm, NlGenerator, NoiseConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabular::Table;

fn bench_realization(c: &mut Criterion) {
    let generator = NlGenerator::new().with_noise(NoiseConfig::off());
    let stmt = sqlexec::parse("select [department] from w order by [total deputies] desc limit 1")
        .unwrap();
    let lf =
        logicforms::parse("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }").unwrap();
    let ae = arithexpr::parse(
        "subtract( the 2019 of Equity , the 2018 of Equity ), divide( #0 , the 2018 of Equity )",
    )
    .unwrap();
    c.bench_function("nlgen/sql_question", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(generator.sql_question(&stmt, &mut rng)))
    });
    c.bench_function("nlgen/logic_claim", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(generator.logic_claim(&lf, &mut rng)))
    });
    c.bench_function("nlgen/arith_question", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(generator.arith_question(&ae, &mut rng)))
    });
}

fn bench_lm(c: &mut Criterion) {
    let mut lm = NgramLm::new(3);
    lm.fit(&nlgen::seed_corpus());
    let sentence = "what is the department with the most amount of total deputies?";
    c.bench_function("nlgen/lm_score", |b| b.iter(|| black_box(lm.score(sentence))));
    c.bench_function("nlgen/lm_observe", |b| {
        b.iter_batched(
            || NgramLm::new(3),
            |mut m| {
                m.observe(sentence);
                black_box(m)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_templates(c: &mut Criterion) {
    let table = Table::from_strings(
        "t",
        &[
            vec!["name", "city", "points", "wins"],
            vec!["Reds", "Oslo", "77", "21"],
            vec!["Blues", "Lima", "64", "18"],
            vec!["Greens", "Kyiv", "81", "24"],
            vec!["Golds", "Quito", "59", "15"],
        ],
    )
    .unwrap();
    let sql_tpl =
        sqlexec::SqlTemplate::parse("select c1 from w order by c2_number desc limit 1").unwrap();
    let lf_tpl = logicforms::LfTemplate::parse(
        "eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }",
    )
    .unwrap();
    c.bench_function("template/sql_instantiate", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(sql_tpl.instantiate(&table, &mut rng)))
    });
    c.bench_function("template/logic_instantiate_true", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(lf_tpl.instantiate(&table, &mut rng, true)))
    });
}

criterion_group!(benches, bench_realization, bench_lm, bench_templates);
criterion_main!(benches);
