//! Criterion benchmarks for the reasoning-model substrate: feature
//! extraction, candidate generation, and model training/prediction.

// Criterion harness setup; failures should abort the benchmark loudly.
#![allow(clippy::unwrap_used)]

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use models::{verifier_features, EvidenceView, QaModel, VerdictSpace, VerifierModel};
use tabular::Table;
use uctr::{Sample, Verdict};

fn table() -> Table {
    Table::from_strings(
        "Printers",
        &[
            vec!["model", "material", "speed", "price"],
            vec!["P100", "PLA", "60", "199"],
            vec!["P200", "ABS", "80", "299"],
            vec!["P300", "PLA", "95", "399"],
            vec!["P400", "PETG", "95", "349"],
        ],
    )
    .unwrap()
}

fn verification_set(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let claim = if i % 2 == 0 {
                "P300 has the highest speed."
            } else {
                "P100 has the highest speed."
            };
            let verdict = if i % 2 == 0 { Verdict::Supported } else { Verdict::Refuted };
            Sample::verification(table(), claim, verdict)
        })
        .collect()
}

fn bench_features(c: &mut Criterion) {
    let s = Sample::verification(
        table(),
        "Most of the models have a speed above 70.",
        Verdict::Supported,
    );
    c.bench_function("models/verifier_features", |b| b.iter(|| black_box(verifier_features(&s))));
    let qa = Sample::qa(table(), "What is the total price of all models?", "1246");
    c.bench_function("models/qa_candidates", |b| {
        b.iter(|| black_box(models::generate_candidates(&qa)))
    });
}

fn bench_training(c: &mut Criterion) {
    let train = verification_set(100);
    c.bench_function("models/verifier_train_100", |b| {
        b.iter_batched(
            || train.clone(),
            |data| black_box(VerifierModel::train(&data, VerdictSpace::TwoWay, EvidenceView::Full)),
            BatchSize::SmallInput,
        )
    });
    let model = VerifierModel::train(&train, VerdictSpace::TwoWay, EvidenceView::Full);
    let s = &train[0];
    c.bench_function("models/verifier_predict", |b| b.iter(|| black_box(model.predict(s))));

    let qa_train: Vec<Sample> = (0..50)
        .map(|i| {
            Sample::qa(
                table(),
                format!("What is the price of P{}00?", (i % 4) + 1),
                format!("{}", [199, 299, 399, 349][i % 4]),
            )
        })
        .collect();
    c.bench_function("models/qa_train_50", |b| {
        b.iter_batched(
            || qa_train.clone(),
            |data| black_box(QaModel::train(&data)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_features, bench_training);
criterion_main!(benches);
