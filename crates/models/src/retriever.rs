//! The first-stage evidence retriever (paper §V-A).
//!
//! FEVEROUS's pipeline retrieves sentences and table cells before the
//! verdict predictor runs, and the FEVEROUS *score* counts a prediction as
//! correct only when the retrieved set covers the gold evidence. The paper
//! reuses the benchmark's trained retriever; the reproduction's stand-in
//! scores each cell by lexical affinity with the claim — its own value,
//! its row's entity, its column header, and exact numeric matches — and
//! returns the top-K cells.
//!
//! Gold evidence is recovered by *re-executing the sample's generating
//! program* and taking its highlighted cells; program-free samples fall
//! back to anchor cells (cells whose value the claim mentions).

use tabular::text::tokenize;
use uctr::Sample;

/// Default retrieval budget (cells per claim).
pub const DEFAULT_RETRIEVE_K: usize = 8;

/// A configurable lexical-affinity cell retriever.
#[derive(Debug, Clone, Copy)]
pub struct Retriever {
    /// How many cells to return.
    pub k: usize,
}

impl Default for Retriever {
    fn default() -> Self {
        Retriever { k: DEFAULT_RETRIEVE_K }
    }
}

impl Retriever {
    pub fn with_budget(k: usize) -> Retriever {
        Retriever { k }
    }

    /// Retrieves the top-K cells for a sample's claim.
    pub fn retrieve(&self, sample: &Sample) -> Vec<(usize, usize)> {
        let table = &sample.table;
        if table.n_cols() == 0 || table.n_rows() == 0 {
            return Vec::new();
        }
        let lower = sample.text.to_lowercase();
        let qtokens = tokenize(&sample.text);
        let ecol = textops::entity_column(table);
        let mut scored: Vec<(f64, (usize, usize))> = Vec::new();
        for ri in 0..table.n_rows() {
            let ent = table
                .cell(ri, ecol)
                .filter(|v| !v.is_null())
                .map(|v| v.to_string().to_lowercase())
                .unwrap_or_default();
            let row_mentioned = !ent.is_empty() && lower.contains(&ent);
            for ci in 0..table.n_cols() {
                let Some(v) = table.cell(ri, ci) else { continue };
                if v.is_null() {
                    continue;
                }
                let vs = v.to_string().to_lowercase();
                let mut score = 0.0;
                if vs.len() > 1 && lower.contains(&vs) {
                    score += 2.0;
                }
                if row_mentioned {
                    score += 1.0;
                }
                if let Some(h) = table.column_name(ci) {
                    let h = h.to_lowercase();
                    if !h.is_empty() && lower.contains(&h) {
                        score += 1.5;
                    }
                }
                if let Some(n) = v.as_number() {
                    if qtokens
                        .iter()
                        .any(|t| t.parse::<f64>().is_ok_and(|x| tabular::nearly_equal(x, n)))
                    {
                        score += 2.0;
                    }
                }
                if score > 0.0 {
                    scored.push((score, (ri, ci)));
                }
            }
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().take(self.k).map(|(_, c)| c).collect()
    }

    /// Fraction of samples whose gold evidence is fully covered by the
    /// retrieved set (evidence recall, the retrieval half of the FEVEROUS
    /// score), as a percentage.
    pub fn evidence_recall(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let covered = samples
            .iter()
            .filter(|s| {
                let gold = gold_evidence_cells(s);
                let retrieved = self.retrieve(s);
                gold.iter().all(|c| retrieved.contains(c))
            })
            .count();
        100.0 * covered as f64 / samples.len() as f64
    }
}

/// The gold evidence of a sample: the table cells its generating program
/// highlighted (recomputed by re-executing the program), or — for samples
/// without a program — the cells whose value the claim mentions.
pub fn gold_evidence_cells(sample: &Sample) -> Vec<(usize, usize)> {
    match &sample.program {
        uctr::ProgramKind::Sql(q) => sqlexec::parse(q)
            .ok()
            .and_then(|stmt| sqlexec::execute(&stmt, &sample.table).ok())
            .map(|r| r.highlighted)
            .unwrap_or_default(),
        uctr::ProgramKind::Logic(f) => logicforms::parse(f)
            .ok()
            .and_then(|e| logicforms::evaluate(&e, &sample.table).ok())
            .map(|o| o.highlighted)
            .unwrap_or_default(),
        uctr::ProgramKind::Arith(p) => arithexpr::parse(p)
            .ok()
            .and_then(|prog| arithexpr::execute(&prog, &sample.table).ok())
            .map(|o| o.highlighted)
            .unwrap_or_default(),
        uctr::ProgramKind::None => {
            let lower = sample.text.to_lowercase();
            let mut cells = Vec::new();
            for ri in 0..sample.table.n_rows() {
                for ci in 0..sample.table.n_cols() {
                    if let Some(v) = sample.table.cell(ri, ci) {
                        if v.is_null() {
                            continue;
                        }
                        let vs = v.to_string().to_lowercase();
                        if vs.len() > 1 && lower.contains(&vs) {
                            cells.push((ri, ci));
                        }
                    }
                }
            }
            cells
        }
    }
}

/// Convenience wrapper with the default budget (kept for API stability).
pub fn retrieve_cells(sample: &Sample) -> Vec<(usize, usize)> {
    Retriever::default().retrieve(sample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Table;
    use uctr::{ProgramKind, Verdict};

    fn sample() -> Sample {
        let t = Table::from_strings(
            "Printers",
            &[
                vec!["model", "speed", "price"],
                vec!["P100", "60", "199"],
                vec!["P300", "95", "399"],
            ],
        )
        .unwrap();
        let mut s = Sample::verification(t, "P300 has the highest speed.", Verdict::Supported);
        s.program =
            ProgramKind::Logic("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }".into());
        s
    }

    #[test]
    fn retrieval_budget_is_respected() {
        let s = sample();
        for k in [1, 3, 8] {
            assert!(Retriever::with_budget(k).retrieve(&s).len() <= k);
        }
    }

    #[test]
    fn mentioned_cell_ranks_first() {
        let s = sample();
        let top = Retriever::with_budget(1).retrieve(&s);
        // "P300" itself is the strongest lexical match.
        assert_eq!(top, vec![(1, 0)]);
    }

    #[test]
    fn recall_grows_with_budget() {
        let samples = vec![sample()];
        let low = Retriever::with_budget(1).evidence_recall(&samples);
        let high = Retriever::with_budget(8).evidence_recall(&samples);
        assert!(high >= low);
        assert_eq!(high, 100.0, "budget 8 must cover this 2x3 table's evidence");
    }

    #[test]
    fn gold_evidence_reexecutes_program() {
        let s = sample();
        let cells = gold_evidence_cells(&s);
        assert!(cells.contains(&(1, 0))); // P300's model cell
        assert!(cells.contains(&(0, 1))); // speed column scanned
    }

    #[test]
    fn program_free_samples_use_anchor_cells() {
        let mut s = sample();
        s.program = ProgramKind::None;
        let cells = gold_evidence_cells(&s);
        assert!(cells.contains(&(1, 0)), "{cells:?}");
    }

    #[test]
    fn empty_table_retrieves_nothing() {
        let t = Table::from_strings("e", &[vec![]]).unwrap();
        let s = Sample::verification(t, "anything", Verdict::Unknown);
        assert!(Retriever::default().retrieve(&s).is_empty());
    }
}
