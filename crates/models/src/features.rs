//! Evidence-analysis features for fact verification.
//!
//! The verifier follows the paradigm of paper Eq. 7 — encode (table,
//! context, claim) and classify — with a feature encoder instead of BERT.
//! The features are *verification signals*: the claim is approximately
//! checked against the table (do its numbers match cells? aggregates?
//! counts? is a mentioned entity the argmax of a mentioned column?) and
//! each check is crossed with the claim's logic cue words. What the model
//! must *learn from training data* is which cue–signal combinations imply
//! Supported vs Refuted — which is exactly where training-data coverage
//! (UCTR vs MQA-QG vs gold) shows up in the scores.

use crate::linear::FeatureVec;
use tabular::text::tokenize;
use tabular::{nearly_equal, ColumnType, Table, Value};
use uctr::Sample;

/// Builds the effective evidence table for a sample: the sample's table
/// plus any records extractable from its context sentences. Joint
/// table-text reasoning (both for the verifier and for QA candidate
/// generation) needs the textual record re-integrated — a split sample's
/// sub-table alone would contradict its gold label.
pub fn evidence_table(sample: &Sample) -> Table {
    let mut table = sample.table.as_table().clone();
    if table.n_cols() == 0 {
        return table;
    }
    for sentence in &sample.context {
        if let Some(rec) = textops::extract_record(sentence, &table) {
            let ecol = textops::entity_column(&table);
            let entity = Value::text(rec.entity.clone());
            let exists = (0..table.n_rows())
                .any(|r| table.cell(r, ecol).is_some_and(|v| v.loosely_equals(&entity)));
            if exists {
                continue;
            }
            let mut row = vec![Value::Null; table.n_cols()];
            row[ecol] = entity;
            for (ci, v) in &rec.fields {
                row[*ci] = v.clone();
            }
            let _ = table.push_row(row);
        }
    }
    table.reinfer_types();
    table
}

/// Precomputed statistics of one numeric column.
#[derive(Debug, Clone)]
struct ColStats {
    header: String,
    max: f64,
    min: f64,
    sum: f64,
    avg: f64,
    values: Vec<f64>,
    argmax_entity: Option<String>,
    argmin_entity: Option<String>,
}

/// Precomputed per-table statistics used by the signal extractors.
#[derive(Debug, Clone)]
pub struct TableStats {
    n_rows: usize,
    numeric: Vec<ColStats>,
    /// All cell strings, lowercased.
    cell_texts: Vec<String>,
    /// Entity-column values, lowercased.
    entities: Vec<String>,
    /// Column headers, lowercased.
    headers: Vec<String>,
}

impl TableStats {
    pub fn compute(table: &Table) -> TableStats {
        let ecol = if table.n_cols() > 0 { textops::entity_column(table) } else { 0 };
        let mut numeric = Vec::new();
        for ci in 0..table.n_cols() {
            if table.schema().column(ci).map(|c| c.ty) != Some(ColumnType::Number) {
                continue;
            }
            let mut values = Vec::new();
            let mut argmax: Option<(f64, usize)> = None;
            let mut argmin: Option<(f64, usize)> = None;
            for ri in 0..table.n_rows() {
                let Some(n) = table.cell(ri, ci).and_then(Value::as_number) else { continue };
                values.push(n);
                if argmax.is_none_or(|(m, _)| n > m) {
                    argmax = Some((n, ri));
                }
                if argmin.is_none_or(|(m, _)| n < m) {
                    argmin = Some((n, ri));
                }
            }
            if values.is_empty() {
                continue;
            }
            let sum: f64 = values.iter().sum();
            let entity_of = |ri: usize| {
                table.cell(ri, ecol).filter(|v| !v.is_null()).map(|v| v.to_string().to_lowercase())
            };
            numeric.push(ColStats {
                header: table.column_name(ci).unwrap_or("").to_lowercase(),
                max: values.iter().cloned().fold(f64::MIN, f64::max),
                min: values.iter().cloned().fold(f64::MAX, f64::min),
                sum,
                avg: sum / values.len() as f64,
                values: values.clone(),
                argmax_entity: argmax.and_then(|(_, ri)| entity_of(ri)),
                argmin_entity: argmin.and_then(|(_, ri)| entity_of(ri)),
            });
        }
        let cell_texts = table
            .rows()
            .iter()
            .flatten()
            .filter(|v| !v.is_null())
            .map(|v| v.to_string().to_lowercase())
            .collect();
        let entities = (0..table.n_rows())
            .filter_map(|ri| table.cell(ri, ecol))
            .filter(|v| !v.is_null())
            .map(|v| v.to_string().to_lowercase())
            .collect();
        let headers = table.schema().columns().iter().map(|c| c.name.to_lowercase()).collect();
        TableStats { n_rows: table.n_rows(), numeric, cell_texts, entities, headers }
    }
}

/// Logic cue groups extracted from claim text.
#[derive(Debug, Clone, Default)]
pub struct Cues {
    pub superlative_max: bool,
    pub superlative_min: bool,
    pub count: bool,
    pub majority: bool,
    pub universal: bool,
    pub unique: bool,
    pub average: bool,
    pub total: bool,
    pub negation: bool,
    pub comparative: bool,
    pub ordinal: bool,
}

/// Detects cue words/phrases in a claim or question.
pub fn detect_cues(text: &str) -> Cues {
    let lower = text.to_lowercase();
    let has = |words: &[&str]| words.iter().any(|w| lower.contains(w));
    Cues {
        // Cue detection stands in for a pretrained encoder's general
        // English reading ability: it recognizes standard superlative /
        // count / majority constructions in ANY phrasing (both the
        // synthetic generator's and a human annotator's), while
        // corpus-specific question idioms must be learned from training
        // data via the lexical features.
        superlative_max: has(&[
            "highest",
            "most ",
            "greatest",
            "largest",
            "top",
            "maximum",
            "no entry posts a higher",
            "no row has a higher",
            "leads",
            "ahead of",
        ]),
        superlative_min: has(&[
            "lowest",
            "least",
            "smallest",
            "fewest",
            "minimum",
            "no entry posts a lower",
            "falls short",
            "last",
        ]),
        count: has(&["there are", "number of", "how many", "count", "a total of", "exactly"]),
        majority: has(&["most of the", "majority", "more than half"]),
        universal: has(&["all of the", "every", "without exception", "all "]),
        unique: has(&["only one", "a single", "only 1"]),
        average: has(&["average", "mean", "typical"]),
        total: has(&["total", "sum", "combined", "overall"]),
        negation: has(&["not the case", "it is false", " not ", "never", "no longer"]),
        comparative: has(&[
            "more than",
            "less than",
            "greater than",
            "fewer than",
            "higher than",
            "lower than",
            "above",
            "below",
            "gap between",
            "difference",
        ]),
        ordinal: has(&["second", "third", "fourth", "2nd", "3rd", "4th", "rank"]),
    }
}

/// Extracts the numbers mentioned in a text.
pub fn extract_numbers(text: &str) -> Vec<f64> {
    tokenize(text).iter().filter_map(|t| t.parse::<f64>().ok()).collect()
}

fn close(a: f64, b: f64) -> bool {
    nearly_equal(a, b) || (a - b).abs() <= 0.015 * a.abs().max(b.abs()).max(1.0)
}

/// Builds the verification feature vector for a sample.
pub fn verifier_features(sample: &Sample) -> FeatureVec {
    let mut fv = FeatureVec::new();
    // Signals are computed over the evidence table (sample table + records
    // restored from the context), so joint table-text claims check out.
    let evidence = evidence_table(sample);
    let sample = &Sample { table: evidence.into(), ..sample.clone() };
    let stats = TableStats::compute(&sample.table);
    let claim_lower = sample.text.to_lowercase();
    let claim_tokens = tokenize(&sample.text);
    let numbers = extract_numbers(&sample.text);
    let cues = detect_cues(&sample.text);

    // --- cue indicator features ---
    for (name, on) in [
        ("cue:supmax", cues.superlative_max),
        ("cue:supmin", cues.superlative_min),
        ("cue:count", cues.count),
        ("cue:majority", cues.majority),
        ("cue:universal", cues.universal),
        ("cue:unique", cues.unique),
        ("cue:average", cues.average),
        ("cue:total", cues.total),
        ("cue:negation", cues.negation),
        ("cue:comparative", cues.comparative),
        ("cue:ordinal", cues.ordinal),
    ] {
        if on {
            fv.flag(name);
        }
    }

    // --- number/cell matching signals ---
    let mut any_cell_match = false;
    let mut any_agg: [bool; 4] = [false; 4]; // max, min, sum, avg
    let mut count_match = false;
    for &n in &numbers {
        let cell_match =
            stats.cell_texts.iter().any(|c| c.parse::<f64>().is_ok_and(|x| close(x, n)));
        if cell_match {
            any_cell_match = true;
        }
        for col in &stats.numeric {
            if close(n, col.max) {
                any_agg[0] = true;
            }
            if close(n, col.min) {
                any_agg[1] = true;
            }
            if close(n, col.sum) {
                any_agg[2] = true;
            }
            if close(n, col.avg) {
                any_agg[3] = true;
            }
        }
        if n.fract() == 0.0 && (n as usize) <= stats.n_rows {
            // Candidate count: rows matching some claim-mentioned value.
            let k = n as usize;
            if k == stats.n_rows {
                count_match = true;
            }
            // count of cells equal to any claim-mentioned value (substring
            // scan so multiword values like "Red Lions" match too)
            for ci in 0..sample.table.n_cols() {
                for v in sample.table.distinct(ci) {
                    let vs = v.to_string().to_lowercase();
                    if vs.len() < 2 || !claim_lower.contains(&vs) {
                        continue;
                    }
                    let c = sample
                        .table
                        .column_values(ci)
                        .iter()
                        .filter(|cell| cell.loosely_equals(&v))
                        .count();
                    if c == k && c > 0 {
                        count_match = true;
                    }
                }
            }
            // count of cells beyond/below another claim-mentioned threshold
            // ("there are 2 rows whose points is more than 70") — only
            // over columns the claim actually names, to keep the signal
            // from firing coincidentally.
            for &t in &numbers {
                if t == n {
                    continue;
                }
                for col in &stats.numeric {
                    if col.header.is_empty() || !claim_lower.contains(&col.header) {
                        continue;
                    }
                    let gt = col.values.iter().filter(|&&v| v > t).count();
                    let lt = col.values.iter().filter(|&&v| v < t).count();
                    if gt == k || lt == k {
                        count_match = true;
                    }
                }
            }
        }
    }
    if any_cell_match {
        fv.flag("sig:num_cell_match");
    } else if !numbers.is_empty() {
        fv.flag("sig:num_cell_miss");
    }
    for (i, name) in ["max", "min", "sum", "avg"].iter().enumerate() {
        if any_agg[i] {
            fv.flag(&format!("sig:num_agg_{name}"));
        }
    }
    if count_match {
        fv.flag("sig:count_match");
    } else if cues.count && !numbers.is_empty() {
        fv.flag("sig:count_miss");
    }

    // --- entity / superlative signals ---
    let mentioned_entities: Vec<&String> = stats
        .entities
        .iter()
        .filter(|e| !e.is_empty() && claim_lower.contains(e.as_str()))
        .collect();
    fv.add("sig:n_entities_mentioned", mentioned_entities.len() as f64);
    let mentioned_cols: Vec<&ColStats> = stats
        .numeric
        .iter()
        .filter(|c| !c.header.is_empty() && claim_lower.contains(&c.header))
        .collect();
    let mut argmax_hit = false;
    let mut argmax_miss = false;
    let mut argmin_hit = false;
    let mut argmin_miss = false;
    for col in &mentioned_cols {
        for ent in &mentioned_entities {
            if col.argmax_entity.as_deref() == Some(ent.as_str()) {
                argmax_hit = true;
            } else if cues.superlative_max {
                argmax_miss = true;
            }
            if col.argmin_entity.as_deref() == Some(ent.as_str()) {
                argmin_hit = true;
            } else if cues.superlative_min {
                argmin_miss = true;
            }
        }
    }
    for (name, on) in [
        ("sig:argmax_hit", argmax_hit),
        ("sig:argmax_miss", argmax_miss),
        ("sig:argmin_hit", argmin_hit),
        ("sig:argmin_miss", argmin_miss),
    ] {
        if on {
            fv.flag(name);
        }
    }
    // Cue × signal crossings (the decisive evidence for the learner).
    if cues.superlative_max {
        fv.flag(if argmax_hit { "x:supmax_hit" } else { "x:supmax_nohit" });
    }
    if cues.superlative_min {
        fv.flag(if argmin_hit { "x:supmin_hit" } else { "x:supmin_nohit" });
    }
    if cues.count {
        fv.flag(if count_match { "x:count_hit" } else { "x:count_nohit" });
    }
    if cues.average {
        fv.flag(if any_agg[3] { "x:avg_hit" } else { "x:avg_nohit" });
    }
    if cues.total {
        fv.flag(if any_agg[2] { "x:sum_hit" } else { "x:sum_nohit" });
    }

    // --- majority / universal signals ---
    if (cues.majority || cues.universal) && !numbers.is_empty() {
        let mut all_true = false;
        let mut most_true = false;
        let mut all_false_possible = false;
        for col in if mentioned_cols.is_empty() {
            stats.numeric.iter().collect::<Vec<_>>()
        } else {
            mentioned_cols.clone()
        } {
            for &n in &numbers {
                let gt = col.values.iter().filter(|&&v| v > n).count();
                let lt = col.values.iter().filter(|&&v| v < n).count();
                let eq = col.values.iter().filter(|&&v| close(v, n)).count();
                let total = col.values.len();
                for k in [gt, lt, eq] {
                    if k == total && total > 0 {
                        all_true = true;
                    }
                    if 2 * k > total {
                        most_true = true;
                    }
                    if k < total {
                        all_false_possible = true;
                    }
                }
            }
        }
        if cues.universal {
            fv.flag(if all_true { "x:all_hit" } else { "x:all_nohit" });
        }
        if cues.majority {
            fv.flag(if most_true { "x:most_hit" } else { "x:most_nohit" });
        }
        let _ = all_false_possible;
    }

    // --- row-consistency signal: does the claimed value sit in the
    // mentioned entity's own row? (the basic single-row fact check --
    // decisive for simple claims like "X has a budget of 700") ---
    {
        let ecol =
            if sample.table.n_cols() > 0 { textops::entity_column(&sample.table) } else { 0 };
        let mut row_hit = false;
        let mut row_miss = false;
        for ri in 0..sample.table.n_rows() {
            let Some(ent) = sample.table.cell(ri, ecol).filter(|v| !v.is_null()) else { continue };
            let ent_l = ent.to_string().to_lowercase();
            if ent_l.is_empty() || !claim_lower.contains(&ent_l) {
                continue;
            }
            let row = sample.table.row(ri).unwrap_or(&[]);
            for &n in &numbers {
                let hit = row.iter().filter_map(tabular::Value::as_number).any(|x| close(x, n));
                if hit {
                    row_hit = true;
                } else {
                    row_miss = true;
                }
            }
            // Text values: a non-entity text cell from this row mentioned?
            for (ci, cell) in row.iter().enumerate() {
                if ci == ecol {
                    continue;
                }
                if let tabular::Value::Text(t) = cell {
                    let tl = t.to_lowercase();
                    if tl.len() > 1 && claim_lower.contains(&tl) {
                        row_hit = true;
                    }
                }
            }
        }
        if row_hit {
            fv.flag("sig:row_value_hit");
        }
        if row_miss {
            fv.flag("sig:row_value_miss");
        }
    }

    // --- unique signal ---
    if cues.unique {
        let unique_hit = claim_tokens.iter().any(|tok| {
            let c = stats.cell_texts.iter().filter(|c| c == &tok).count();
            c == 1
        });
        fv.flag(if unique_hit { "x:unique_hit" } else { "x:unique_nohit" });
    }

    // --- context (text evidence) signals ---
    let context = sample.context_text().to_lowercase();
    if !context.is_empty() {
        let ctx_tokens = tokenize(&context);
        let overlap = claim_tokens.iter().filter(|t| ctx_tokens.contains(t)).count();
        fv.add("sig:ctx_overlap", overlap as f64 / claim_tokens.len().max(1) as f64);
        let mut ctx_num_hit = false;
        let mut ctx_num_miss = false;
        for &n in &numbers {
            let hit = ctx_tokens.iter().any(|t| t.parse::<f64>().is_ok_and(|x| close(x, n)));
            if hit {
                ctx_num_hit = true;
            } else {
                ctx_num_miss = true;
            }
        }
        if ctx_num_hit {
            fv.flag("sig:ctx_num_hit");
        }
        if ctx_num_miss {
            fv.flag("sig:ctx_num_miss");
        }
    } else {
        fv.flag("sig:no_context");
    }

    // --- claim-table lexical coverage (Unknown detection) ---
    // Only content words count: function words and free-standing numbers
    // (already handled by the numeric signals above) would dilute the
    // ratio and make ordinary count/threshold claims look off-topic.
    const STOP: &[&str] = &[
        "the", "a", "an", "of", "is", "was", "are", "were", "has", "have", "in", "on", "for", "to",
        "and", "or", "that", "than", "more", "less", "there", "rows", "row", "whose", "with",
        "its", "it", "as", "by", "at", "from", "their", "most", "all", "only", "not", "entries",
        "entry", "table", "one", "no", "be",
    ];
    let content_tokens: Vec<&String> = claim_tokens
        .iter()
        .filter(|t| t.len() > 2 && t.parse::<f64>().is_err() && !STOP.contains(&t.as_str()))
        .collect();
    let covered = content_tokens
        .iter()
        .filter(|t| {
            stats.cell_texts.iter().any(|c| c.contains(t.as_str()))
                || stats.headers.iter().any(|h| h.contains(t.as_str()))
                || context.contains(t.as_str())
        })
        .count();
    let coverage =
        if content_tokens.is_empty() { 1.0 } else { covered as f64 / content_tokens.len() as f64 };
    fv.add("sig:coverage", coverage);
    if coverage < 0.35 {
        fv.flag("sig:low_coverage");
    }
    // A claim is anchored when it mentions an entity, matches a cell value,
    // or names a column it quantifies over.
    let mentions_header =
        stats.headers.iter().any(|h| !h.is_empty() && claim_lower.contains(h.as_str()));
    let ent_or_num_anchor = !mentioned_entities.is_empty() || any_cell_match || mentions_header;
    if !ent_or_num_anchor {
        fv.flag("sig:no_anchor");
    }

    // --- lexical features ---
    // Like a fine-tuned encoder, the model also conditions on surface
    // phrasing. These features are what make training-distribution phrasing
    // matter: a model trained on synthetic phrasings transfers its signal
    // weights but not its lexical weights to human-phrased claims (the
    // supervised-vs-unsupervised gap of the paper's tables).
    for tok in &claim_tokens {
        if tok.len() > 2 && tok.parse::<f64>().is_err() {
            fv.add(&format!("w:{tok}"), 0.35);
        }
    }
    for pair in claim_tokens.windows(2) {
        fv.add(&format!("b:{} {}", pair[0], pair[1]), 0.2);
    }

    fv.add("bias", 1.0);
    fv
}

#[cfg(test)]
mod tests {
    use super::*;
    use uctr::Verdict;

    fn table() -> Table {
        Table::from_strings(
            "Printers",
            &[
                vec!["model", "material", "speed", "price"],
                vec!["P100", "PLA", "60", "199"],
                vec!["P200", "ABS", "80", "299"],
                vec!["P300", "PLA", "95", "399"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn cues_detected() {
        let c = detect_cues("Most of the rows have a speed above 70.");
        assert!(c.majority);
        let c = detect_cues("P300 has the highest speed.");
        assert!(c.superlative_max);
        let c = detect_cues("There are 2 rows whose material is PLA.");
        assert!(c.count);
        let c = detect_cues("It is not the case that the average price is 299.");
        assert!(c.negation && c.average);
    }

    #[test]
    fn numbers_extracted() {
        assert_eq!(extract_numbers("there are 3 rows and 2.5 points"), vec![3.0, 2.5]);
    }

    #[test]
    fn supmax_hit_feature_fires_for_true_superlative() {
        let s =
            uctr::Sample::verification(table(), "P300 has the highest speed.", Verdict::Supported);
        let fv = verifier_features(&s);
        let hit = FeatureVec::hash_name("x:supmax_hit");
        assert!(fv.iter().any(|(i, _)| i == hit), "expected supmax_hit");
    }

    #[test]
    fn supmax_nohit_for_false_superlative() {
        let s =
            uctr::Sample::verification(table(), "P100 has the highest speed.", Verdict::Refuted);
        let fv = verifier_features(&s);
        let nohit = FeatureVec::hash_name("x:supmax_nohit");
        assert!(fv.iter().any(|(i, _)| i == nohit), "expected supmax_nohit");
    }

    #[test]
    fn count_signals() {
        let s = uctr::Sample::verification(
            table(),
            "There are 2 rows whose material is PLA.",
            Verdict::Supported,
        );
        let fv = verifier_features(&s);
        let hit = FeatureVec::hash_name("x:count_hit");
        assert!(fv.iter().any(|(i, _)| i == hit));
        let s = uctr::Sample::verification(
            table(),
            "There are 3 rows whose material is PLA.",
            Verdict::Refuted,
        );
        let fv = verifier_features(&s);
        // 3 == n_rows so count_match also fires; at minimum the vector is
        // non-empty and contains the count cue.
        assert!(!fv.is_empty());
    }

    #[test]
    fn aggregate_signal() {
        // avg price = 299
        let s =
            uctr::Sample::verification(table(), "The average price is 299.", Verdict::Supported);
        let fv = verifier_features(&s);
        let hit = FeatureVec::hash_name("x:avg_hit");
        assert!(fv.iter().any(|(i, _)| i == hit));
    }

    #[test]
    fn low_coverage_flags_unknown_style_claims() {
        let s = uctr::Sample::verification(
            table(),
            "The gross domestic product of Ruritania quadrupled in 1931.",
            Verdict::Unknown,
        );
        let fv = verifier_features(&s);
        let flag = FeatureVec::hash_name("sig:no_anchor");
        assert!(fv.iter().any(|(i, _)| i == flag));
    }

    #[test]
    fn row_consistency_signal() {
        let t = table();
        // Claimed value sits in P200's row.
        let s =
            uctr::Sample::verification(t.clone(), "P200 has a price of 299.", Verdict::Supported);
        let fv = verifier_features(&s);
        let hit = FeatureVec::hash_name("sig:row_value_hit");
        assert!(fv.iter().any(|(i, _)| i == hit));
        // Claimed value belongs to a different row.
        let s = uctr::Sample::verification(t, "P200 has a price of 199.", Verdict::Refuted);
        let fv = verifier_features(&s);
        let miss = FeatureVec::hash_name("sig:row_value_miss");
        assert!(fv.iter().any(|(i, _)| i == miss));
    }

    #[test]
    fn threshold_count_signal() {
        let t = table();
        // speeds: 60, 80, 95 -> exactly 2 are above 70.
        let s = uctr::Sample::verification(
            t,
            "There are 2 rows whose speed is more than 70.",
            Verdict::Supported,
        );
        let fv = verifier_features(&s);
        let hit = FeatureVec::hash_name("x:count_hit");
        assert!(fv.iter().any(|(i, _)| i == hit), "threshold count signal missing");
    }

    #[test]
    fn multiword_value_count_signal() {
        let t = Table::from_strings(
            "t",
            &[
                vec!["team", "pts"],
                vec!["Red Lions", "3"],
                vec!["Red Lions", "4"],
                vec!["Blue Sharks", "5"],
            ],
        )
        .unwrap();
        let s = uctr::Sample::verification(
            t,
            "There are 2 entries that list Red Lions as their team.",
            Verdict::Supported,
        );
        let fv = verifier_features(&s);
        let hit = FeatureVec::hash_name("x:count_hit");
        assert!(fv.iter().any(|(i, _)| i == hit), "multiword count signal missing");
    }

    #[test]
    fn context_signals_for_text_samples() {
        let mut s = uctr::Sample::verification(
            Table::from_strings("t", &[vec![]]).unwrap(),
            "P900 reports 44 as its speed.",
            Verdict::Supported,
        );
        s.context = vec!["P900 has a speed of 44 and a price of 120.".to_string()];
        let fv = verifier_features(&s);
        let hit = FeatureVec::hash_name("sig:ctx_num_hit");
        assert!(fv.iter().any(|(i, _)| i == hit));
    }
}
