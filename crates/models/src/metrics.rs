//! Evaluation metrics for all four benchmarks (paper §V-A).
//!
//! * TAT-QA: Exact Match and the numeracy-focused token F1;
//! * WikiSQL: denotation accuracy;
//! * FEVEROUS: label accuracy and the FEVEROUS score (label correct *and*
//!   retrieved evidence covers the gold evidence set);
//! * SEM-TAB-FACTS: 3-way micro F1.

use tabular::text::{normalize_answer, token_f1, tokenize};
use tabular::Value;
use uctr::{Sample, Verdict};

/// Exact match after normalization (articles dropped, numbers canonical).
pub fn exact_match(pred: &str, gold: &str) -> bool {
    let p = normalize_answer(pred);
    let g = normalize_answer(gold);
    if p == g {
        return true;
    }
    // Numeric tolerance: "−0.2" vs "-0.200001" style float noise.
    if let (Ok(a), Ok(b)) = (p.parse::<f64>(), g.parse::<f64>()) {
        return tabular::nearly_equal(a, b)
            || (a - b).abs() <= 0.005 * a.abs().max(b.abs()).max(1e-9);
    }
    false
}

/// Numeracy-focused F1: exact for numbers, token F1 for text answers.
pub fn numeracy_f1(pred: &str, gold: &str) -> f64 {
    let p = normalize_answer(pred);
    let g = normalize_answer(gold);
    if let (Ok(a), Ok(b)) = (p.parse::<f64>(), g.parse::<f64>()) {
        return if tabular::nearly_equal(a, b)
            || (a - b).abs() <= 0.005 * a.abs().max(b.abs()).max(1e-9)
        {
            1.0
        } else {
            0.0
        };
    }
    token_f1(&tokenize(&p), &tokenize(&g))
}

/// Mean EM and F1 of (pred, gold) pairs, as percentages.
pub fn em_f1(pairs: &[(String, String)]) -> (f64, f64) {
    if pairs.is_empty() {
        return (0.0, 0.0);
    }
    let em = pairs.iter().filter(|(p, g)| exact_match(p, g)).count() as f64 / pairs.len() as f64;
    let f1 = pairs.iter().map(|(p, g)| numeracy_f1(p, g)).sum::<f64>() / pairs.len() as f64;
    (100.0 * em, 100.0 * f1)
}

/// Denotation accuracy (WikiSQL): EM on the answer string.
pub fn denotation_accuracy(pairs: &[(String, String)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    100.0 * pairs.iter().filter(|(p, g)| exact_match(p, g)).count() as f64 / pairs.len() as f64
}

/// Label accuracy for verdicts, as a percentage.
pub fn label_accuracy(pairs: &[(Verdict, Verdict)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    100.0 * pairs.iter().filter(|(p, g)| p == g).count() as f64 / pairs.len() as f64
}

/// 3-way micro F1 (for single-label multiclass prediction, micro F1 equals
/// accuracy; reported under the benchmark's metric name).
pub fn micro_f1(pairs: &[(Verdict, Verdict)]) -> f64 {
    label_accuracy(pairs)
}

// ---------------------------------------------------------------------------
// FEVEROUS score: retrieval + verdict.
// ---------------------------------------------------------------------------

pub use crate::retriever::{gold_evidence_cells, retrieve_cells};

/// FEVEROUS score: fraction of samples where the verdict is correct AND the
/// retrieved evidence covers the gold evidence cells, as a percentage.
pub fn feverous_score(samples: &[Sample], predictions: &[Verdict]) -> f64 {
    assert_eq!(samples.len(), predictions.len());
    if samples.is_empty() {
        return 0.0;
    }
    let mut ok = 0usize;
    for (s, pred) in samples.iter().zip(predictions) {
        let gold_label = s.label.as_verdict();
        if gold_label != Some(*pred) {
            continue;
        }
        let gold = gold_evidence_cells(s);
        let retrieved = retrieve_cells(s);
        // Text-evidence samples: the retriever must simply not hallucinate
        // table evidence; treat empty gold as covered.
        let covered = gold.iter().all(|c| retrieved.contains(c));
        if covered {
            ok += 1;
        }
    }
    100.0 * ok as f64 / samples.len() as f64
}

/// Quick helper: does a value appear in a denotation string.
pub fn denotation_contains(denotation: &str, value: &Value) -> bool {
    normalize_answer(denotation).contains(&normalize_answer(&value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Table;
    use uctr::{Label, ProgramKind};

    #[test]
    fn exact_match_normalization() {
        assert!(exact_match("The Defense", "defense"));
        assert!(exact_match("5.0", "5"));
        assert!(exact_match("-0.2", "-0.2000004"));
        assert!(!exact_match("Commerce", "Defense"));
        // Zero-sign and trailing-dot forms collapse (tabular::text pins the
        // token-level cases; this pins metric-level agreement).
        assert!(exact_match("-0", "0"));
        assert!(exact_match("-0.00001", "0"));
        assert!(exact_match("It was 42.", "it was 42"));
    }

    #[test]
    fn numeracy_f1_numbers_are_all_or_nothing() {
        assert_eq!(numeracy_f1("5", "5.0"), 1.0);
        assert_eq!(numeracy_f1("5", "6"), 0.0);
        let f = numeracy_f1("the quick fox", "quick brown fox");
        assert!(f > 0.5 && f < 1.0);
    }

    #[test]
    fn em_f1_aggregation() {
        let pairs =
            vec![("5".to_string(), "5".to_string()), ("x b".to_string(), "x c".to_string())];
        let (em, f1) = em_f1(&pairs);
        assert_eq!(em, 50.0);
        assert!(f1 > 50.0 && f1 < 100.0);
    }

    #[test]
    fn label_accuracy_and_micro_f1() {
        let pairs = vec![
            (Verdict::Supported, Verdict::Supported),
            (Verdict::Refuted, Verdict::Supported),
            (Verdict::Unknown, Verdict::Unknown),
        ];
        assert!((label_accuracy(&pairs) - 66.666).abs() < 0.1);
        assert_eq!(micro_f1(&pairs), label_accuracy(&pairs));
    }

    fn sample_with_program() -> Sample {
        let t = Table::from_strings(
            "Printers",
            &[vec!["model", "speed"], vec!["P100", "60"], vec!["P300", "95"]],
        )
        .unwrap();
        let mut s = Sample::verification(t, "P300 has the highest speed.", Verdict::Supported);
        s.program =
            ProgramKind::Logic("eq { hop { argmax { all_rows ; speed } ; model } ; P300 }".into());
        s
    }

    #[test]
    fn gold_evidence_from_program() {
        let s = sample_with_program();
        let cells = gold_evidence_cells(&s);
        assert!(cells.contains(&(1, 0)), "{cells:?}"); // P300's model cell
        assert!(cells.contains(&(0, 1)), "{cells:?}"); // speed column scanned
    }

    #[test]
    fn retriever_finds_mentioned_cells() {
        let s = sample_with_program();
        let retrieved = retrieve_cells(&s);
        assert!(retrieved.contains(&(1, 0)), "{retrieved:?}");
    }

    #[test]
    fn feverous_score_requires_both() {
        let s = sample_with_program();
        let right = feverous_score(std::slice::from_ref(&s), &[Verdict::Supported]);
        let wrong = feverous_score(&[s], &[Verdict::Refuted]);
        assert!(right >= wrong);
        assert_eq!(wrong, 0.0);
    }

    #[test]
    fn feverous_score_is_at_most_label_accuracy() {
        let s = sample_with_program();
        let mut s2 = s.clone();
        s2.label = Label::Verdict(Verdict::Refuted);
        let samples = vec![s, s2];
        let preds = vec![Verdict::Supported, Verdict::Refuted];
        let fs = feverous_score(&samples, &preds);
        let acc = label_accuracy(&[
            (Verdict::Supported, Verdict::Supported),
            (Verdict::Refuted, Verdict::Refuted),
        ]);
        assert!(fs <= acc);
    }
}
