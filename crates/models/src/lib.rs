//! # models — tabular reasoning models, training and metrics
//!
//! Feature-based statistical learners standing in for the paper's neural
//! models (TAGOP, TAPAS, TAPEX, the FEVEROUS baseline): a hashed-feature
//! max-ent core ([`LinearModel`]), a fact-verification model over
//! verification-signal features ([`VerifierModel`]), a candidate-ranking QA
//! model ([`QaModel`]), the random baselines, and the benchmark metrics
//! (EM, numeracy F1, denotation accuracy, label accuracy, micro F1, and the
//! FEVEROUS score with a simulated retriever). All of them learn from the
//! training set they are given, so the paper's supervised / unsupervised /
//! few-shot / augmentation contrasts are reproduced by swapping datasets.

pub mod features;
pub mod linear;
pub mod metrics;
pub mod qa;
pub mod retriever;
pub mod verifier;

pub use features::{detect_cues, evidence_table, extract_numbers, verifier_features, TableStats};
pub use linear::{FeatureVec, LinearModel, TrainConfig, FEATURE_DIM};
pub use metrics::{
    denotation_accuracy, em_f1, exact_match, feverous_score, gold_evidence_cells, label_accuracy,
    micro_f1, numeracy_f1, retrieve_cells,
};
pub use qa::{generate_candidates, Candidate, CandidateSpace, QaModel};
pub use retriever::{Retriever, DEFAULT_RETRIEVE_K};
pub use verifier::{EvidenceView, RandomVerifier, VerdictSpace, VerifierModel};
