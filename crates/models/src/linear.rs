//! Sparse multinomial logistic regression with hashed features.
//!
//! The learnable core of every reasoning model in the reproduction: a
//! max-entropy classifier over hashed sparse features trained with AdaGrad
//! SGD. It plays the role of the neural encoders' classification heads
//! (paper Eq. 7) at CPU-training speed, and — critically for the
//! experiments — its accuracy depends on the *training data quality*, which
//! is the quantity the paper varies.

use rustc_hash::FxHasher;
use std::hash::{Hash, Hasher};

/// Feature-space dimensionality (hashing trick).
pub const FEATURE_DIM: usize = 1 << 18;

/// A sparse feature vector: (hashed index, value) pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureVec {
    entries: Vec<(u32, f32)>,
}

impl FeatureVec {
    pub fn new() -> FeatureVec {
        FeatureVec::default()
    }

    /// Hashes a named feature into the index space.
    pub fn hash_name(name: &str) -> u32 {
        let mut h = FxHasher::default();
        name.hash(&mut h);
        (h.finish() % FEATURE_DIM as u64) as u32
    }

    /// Adds (accumulates) a named feature.
    pub fn add(&mut self, name: &str, value: f64) {
        let idx = Self::hash_name(name);
        match self.entries.iter_mut().find(|(i, _)| *i == idx) {
            Some((_, v)) => *v += value as f32,
            None => self.entries.push((idx, value as f32)),
        }
    }

    /// Adds a binary indicator feature.
    pub fn flag(&mut self, name: &str) {
        self.add(name, 1.0);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.entries.iter().copied()
    }

    /// L2-normalizes the vector (keeps scales comparable across samples of
    /// different sizes).
    pub fn normalize(&mut self) {
        let norm: f32 = self.entries.iter().map(|(_, v)| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for (_, v) in &mut self.entries {
                *v /= norm;
            }
        }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    pub learning_rate: f64,
    pub l2: f64,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 12, learning_rate: 0.5, l2: 1e-6, seed: 17 }
    }
}

/// A trained multinomial logistic-regression model.
#[derive(Debug, Clone)]
pub struct LinearModel {
    n_classes: usize,
    /// Row-major [n_classes × FEATURE_DIM] weights.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl LinearModel {
    /// An untrained (zero-weight) model: predicts class 0 with uniform
    /// probabilities — the "no fine-tuning" baseline.
    pub fn zeros(n_classes: usize) -> LinearModel {
        LinearModel {
            n_classes,
            weights: vec![0.0; n_classes * FEATURE_DIM],
            bias: vec![0.0; n_classes],
        }
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Trains with AdaGrad SGD on (features, class) pairs.
    pub fn train(
        examples: &[(FeatureVec, usize)],
        n_classes: usize,
        cfg: TrainConfig,
    ) -> LinearModel {
        let mut model = LinearModel::zeros(n_classes);
        if examples.is_empty() {
            return model;
        }
        model.train_more(examples, cfg);
        model
    }

    /// Continues training an existing model (the fine-tuning step of the
    /// few-shot and augmentation experiments).
    pub fn train_more(&mut self, examples: &[(FeatureVec, usize)], cfg: TrainConfig) {
        if examples.is_empty() {
            return;
        }
        let mut grad_sq: Vec<f32> = vec![1e-8; self.n_classes * FEATURE_DIM];
        let mut bias_sq: Vec<f32> = vec![1e-8; self.n_classes];
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut rng_state = cfg.seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next_rand = move || {
            // xorshift64*
            rng_state ^= rng_state >> 12;
            rng_state ^= rng_state << 25;
            rng_state ^= rng_state >> 27;
            rng_state = rng_state.wrapping_mul(0x2545F4914F6CDD1D);
            rng_state
        };
        let lr = cfg.learning_rate as f32;
        let l2 = cfg.l2 as f32;
        let mut probs = vec![0.0f32; self.n_classes];
        for _epoch in 0..cfg.epochs {
            // Fisher–Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = (next_rand() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for &ei in &order {
                let (fv, label) = &examples[ei];
                self.predict_proba_into(fv, &mut probs);
                for c in 0..self.n_classes {
                    let err = probs[c] - if c == *label { 1.0 } else { 0.0 };
                    if err == 0.0 {
                        continue;
                    }
                    // bias update
                    let g = err;
                    bias_sq[c] += g * g;
                    self.bias[c] -= lr * g / bias_sq[c].sqrt();
                    let row = c * FEATURE_DIM;
                    for (idx, val) in fv.iter() {
                        let w = &mut self.weights[row + idx as usize];
                        let g = err * val + l2 * *w;
                        let gs = &mut grad_sq[row + idx as usize];
                        *gs += g * g;
                        *w -= lr * g / gs.sqrt();
                    }
                }
            }
        }
    }

    /// Raw scores per class.
    pub fn scores(&self, fv: &FeatureVec) -> Vec<f32> {
        let mut out = self.bias.clone();
        for (c, slot) in out.iter_mut().enumerate() {
            let row = c * FEATURE_DIM;
            let mut s = 0.0f32;
            for (idx, val) in fv.iter() {
                s += self.weights[row + idx as usize] * val;
            }
            *slot += s;
        }
        out
    }

    fn predict_proba_into(&self, fv: &FeatureVec, probs: &mut [f32]) {
        let scores = self.scores(fv);
        let max = scores.iter().cloned().fold(f32::MIN, f32::max);
        let mut z = 0.0f32;
        for (p, s) in probs.iter_mut().zip(&scores) {
            *p = (s - max).exp();
            z += *p;
        }
        for p in probs.iter_mut() {
            *p /= z;
        }
    }

    /// Class probabilities.
    pub fn predict_proba(&self, fv: &FeatureVec) -> Vec<f32> {
        let mut probs = vec![0.0f32; self.n_classes];
        self.predict_proba_into(fv, &mut probs);
        probs
    }

    /// Most probable class (ties resolve to the lowest class index).
    pub fn predict(&self, fv: &FeatureVec) -> usize {
        let scores = self.scores(fv);
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate().skip(1) {
            if s > scores[best] {
                best = i;
            }
        }
        best
    }

    /// Score of a single class — used as a ranking score by the QA model.
    pub fn class_score(&self, fv: &FeatureVec, class: usize) -> f32 {
        let row = class * FEATURE_DIM;
        let mut s = self.bias[class];
        for (idx, val) in fv.iter() {
            s += self.weights[row + idx as usize] * val;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(feats: &[(&str, f64)]) -> FeatureVec {
        let mut v = FeatureVec::new();
        for (n, x) in feats {
            v.add(n, *x);
        }
        v
    }

    #[test]
    fn featurevec_accumulates() {
        let mut v = FeatureVec::new();
        v.add("a", 1.0);
        v.add("a", 2.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v.iter().next().unwrap().1, 3.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = fv(&[("a", 3.0), ("b", 4.0)]);
        v.normalize();
        let norm: f32 = v.iter().map(|(_, x)| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn learns_linearly_separable_data() {
        let mut examples = Vec::new();
        for i in 0..50 {
            examples.push((fv(&[("pos", 1.0), (&format!("noise{i}"), 0.3)]), 1usize));
            examples.push((fv(&[("neg", 1.0), (&format!("noise{}", i + 100), 0.3)]), 0usize));
        }
        let model = LinearModel::train(&examples, 2, TrainConfig::default());
        assert_eq!(model.predict(&fv(&[("pos", 1.0)])), 1);
        assert_eq!(model.predict(&fv(&[("neg", 1.0)])), 0);
    }

    #[test]
    fn learns_three_classes() {
        let mut examples = Vec::new();
        for _ in 0..30 {
            examples.push((fv(&[("a", 1.0)]), 0usize));
            examples.push((fv(&[("b", 1.0)]), 1usize));
            examples.push((fv(&[("c", 1.0)]), 2usize));
        }
        let model = LinearModel::train(&examples, 3, TrainConfig::default());
        assert_eq!(model.predict(&fv(&[("a", 1.0)])), 0);
        assert_eq!(model.predict(&fv(&[("b", 1.0)])), 1);
        assert_eq!(model.predict(&fv(&[("c", 1.0)])), 2);
    }

    #[test]
    fn zero_model_gives_uniform_probs() {
        let model = LinearModel::zeros(3);
        let p = model.predict_proba(&fv(&[("x", 1.0)]));
        for pi in p {
            assert!((pi - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut examples = Vec::new();
        for _ in 0..10 {
            examples.push((fv(&[("a", 1.0)]), 0usize));
            examples.push((fv(&[("b", 1.0)]), 1usize));
        }
        let model = LinearModel::train(&examples, 2, TrainConfig::default());
        let p = model.predict_proba(&fv(&[("a", 0.5), ("b", 0.5)]));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn fine_tuning_shifts_decision() {
        // Train on one mapping, fine-tune on the opposite with more epochs.
        let base: Vec<(FeatureVec, usize)> = (0..20).map(|_| (fv(&[("x", 1.0)]), 0usize)).collect();
        let mut model = LinearModel::train(&base, 2, TrainConfig::default());
        assert_eq!(model.predict(&fv(&[("x", 1.0)])), 0);
        let flip: Vec<(FeatureVec, usize)> =
            (0..200).map(|_| (fv(&[("x", 1.0)]), 1usize)).collect();
        model.train_more(&flip, TrainConfig { epochs: 30, ..TrainConfig::default() });
        assert_eq!(model.predict(&fv(&[("x", 1.0)])), 1);
    }

    #[test]
    fn empty_training_is_zero_model() {
        let model = LinearModel::train(&[], 2, TrainConfig::default());
        assert_eq!(model.predict(&fv(&[("x", 1.0)])), 0);
    }

    #[test]
    fn deterministic_training() {
        let examples: Vec<(FeatureVec, usize)> =
            (0..20).map(|i| (fv(&[(&format!("f{}", i % 3), 1.0)]), (i % 3) as usize)).collect();
        let a = LinearModel::train(&examples, 3, TrainConfig::default());
        let b = LinearModel::train(&examples, 3, TrainConfig::default());
        let t = fv(&[("f1", 1.0)]);
        assert_eq!(a.scores(&t), b.scores(&t));
    }
}
