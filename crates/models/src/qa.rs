//! Table question answering: candidate generation + learned ranking.
//!
//! The reproduction's counterpart of TAGOP (and, on WikiSQL, TAPEX): the
//! model enumerates *answer candidates* from the evidence — cell values,
//! filtered lookups, column aggregates, row-arithmetic results (difference,
//! percentage change, ratio, two-value average), yes/no, and spans from the
//! context sentences — and scores each candidate with a trained linear
//! ranker over question–candidate match features. TAGOP's "tag cells, then
//! apply an operator" pipeline maps onto candidate provenance (which cells)
//! and candidate type (which operator); what training data teaches is the
//! association between question phrasing and operator/provenance choice,
//! which is where synthetic-data coverage shows up in EM/F1.

use crate::features::{detect_cues, evidence_table, extract_numbers};
use crate::linear::{FeatureVec, LinearModel, TrainConfig};
use tabular::text::{normalize_answer, tokenize};
use tabular::{format_number, ColumnType, Table, Value};
use uctr::Sample;

/// One answer candidate with its ranking features.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Raw answer text.
    pub text: String,
    /// Candidate kind ("cell", "agg_max", "arith_pct", ...), i.e. the
    /// implied operator.
    pub kind: String,
    pub features: FeatureVec,
}

/// Question cue profile for QA.
#[derive(Debug, Clone, Default)]
struct QaCues {
    count: bool,
    supmax: bool,
    supmin: bool,
    total: bool,
    average: bool,
    pct: bool,
    diff: bool,
    ratio: bool,
    yesno: bool,
    lookup: bool,
}

fn qa_cues(question: &str) -> QaCues {
    let lower = question.to_lowercase();
    let c = detect_cues(question);
    let has = |words: &[&str]| words.iter().any(|w| lower.contains(w));
    QaCues {
        count: has(&["how many", "what number of"]),
        supmax: c.superlative_max,
        supmin: c.superlative_min,
        total: c.total,
        average: c.average,
        pct: has(&["percent", "percentage", "relative change"]),
        diff: has(&["difference", "change in", "gap", "differ"]),
        ratio: has(&["ratio", "product"]),
        yesno: lower.starts_with("was ")
            || lower.starts_with("does ")
            || lower.starts_with("did ")
            || lower.starts_with("is ")
            || lower.contains("greater than") && lower.starts_with("w"),
        lookup: has(&["what is the", "tell me the", "which", "name the", "listed", "recorded"]),
    }
}

/// Overlap of a phrase's tokens with the question tokens.
fn overlap(question_tokens: &[String], phrase: &str) -> f64 {
    let toks = tokenize(phrase);
    if toks.is_empty() {
        return 0.0;
    }
    let hit = toks.iter().filter(|t| question_tokens.contains(t)).count();
    hit as f64 / toks.len() as f64
}

fn base_features(
    kind: &str,
    cues: &QaCues,
    question_tokens: &[String],
    col_header: Option<&str>,
    row_entity: Option<&str>,
    text: &str,
) -> FeatureVec {
    let mut fv = FeatureVec::new();
    fv.flag(&format!("type:{kind}"));
    // cue × type crossings: the core operator-selection evidence.
    for (cue, on) in [
        ("count", cues.count),
        ("supmax", cues.supmax),
        ("supmin", cues.supmin),
        ("total", cues.total),
        ("avg", cues.average),
        ("pct", cues.pct),
        ("diff", cues.diff),
        ("ratio", cues.ratio),
        ("yesno", cues.yesno),
        ("lookup", cues.lookup),
    ] {
        if on {
            fv.flag(&format!("x:{cue}:{kind}"));
        }
    }
    if let Some(h) = col_header {
        fv.add("ov:col", overlap(question_tokens, h));
    }
    if let Some(e) = row_entity {
        fv.add("ov:row", overlap(question_tokens, e));
    }
    // A candidate literally present in the question is usually a condition,
    // not the answer.
    let self_mention = overlap(question_tokens, text);
    fv.add("ov:self", self_mention);
    // Lexical × type features: surface phrasing learned from the training
    // distribution (see the note in `features.rs`).
    for tok in question_tokens {
        if tok.len() > 2 && tok.parse::<f64>().is_err() {
            fv.add(&format!("w:{tok}:{kind}"), 0.15);
        }
    }
    fv.add("bias", 1.0);
    fv
}

/// Enumerates candidates for a sample.
pub fn generate_candidates(sample: &Sample) -> Vec<Candidate> {
    let table = evidence_table(sample);
    let cues = qa_cues(&sample.text);
    let qtokens = tokenize(&sample.text);
    let qnumbers = extract_numbers(&sample.text);
    let mut out: Vec<Candidate> = Vec::new();
    let ecol = if table.n_cols() > 0 { textops::entity_column(&table) } else { 0 };

    let entity_of = |ri: usize| -> Option<String> {
        table.cell(ri, ecol).filter(|v| !v.is_null()).map(|v| v.to_string())
    };

    // --- cell candidates ---
    for ri in 0..table.n_rows() {
        for ci in 0..table.n_cols() {
            let Some(v) = table.cell(ri, ci) else { continue };
            if v.is_null() {
                continue;
            }
            let text = v.to_string();
            let mut fv = base_features(
                "cell",
                &cues,
                &qtokens,
                table.column_name(ci),
                entity_of(ri).as_deref(),
                &text,
            );
            if ci == ecol {
                fv.flag("cell:is_entity_col");
            }
            out.push(Candidate { text, kind: "cell".into(), features: fv });
        }
    }

    // --- numeric column statistics ---
    let numeric_cols: Vec<usize> = table.schema().columns_of_type(ColumnType::Number);
    for &ci in &numeric_cols {
        let header = table.column_name(ci).unwrap_or("").to_string();
        let vals: Vec<f64> = table.column_values(ci).iter().filter_map(Value::as_number).collect();
        if vals.is_empty() {
            continue;
        }
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let sum: f64 = vals.iter().sum();
        let avg = sum / vals.len() as f64;
        for (kind, value) in
            [("agg_max", max), ("agg_min", min), ("agg_sum", sum), ("agg_avg", avg)]
        {
            let text = format_number(value);
            let fv = base_features(kind, &cues, &qtokens, Some(&header), None, &text);
            out.push(Candidate { text, kind: kind.to_string(), features: fv });
        }
        // argmax/argmin entities (superlative lookups).
        if let Some(am) = table.argmax(ci).and_then(&entity_of) {
            let fv = base_features("argmax_ent", &cues, &qtokens, Some(&header), Some(&am), &am);
            out.push(Candidate { text: am, kind: "argmax_ent".into(), features: fv });
        }
        if let Some(am) = table.argmin(ci).and_then(&entity_of) {
            let fv = base_features("argmin_ent", &cues, &qtokens, Some(&header), Some(&am), &am);
            out.push(Candidate { text: am, kind: "argmin_ent".into(), features: fv });
        }
    }

    // --- counting candidates ---
    // total rows
    {
        let text = format_number(table.n_rows() as f64);
        let fv = base_features("count_all", &cues, &qtokens, None, None, &text);
        out.push(Candidate { text, kind: "count_all".into(), features: fv });
    }
    // rows matching a question-mentioned value (equality filters)
    for ci in 0..table.n_cols() {
        let header = table.column_name(ci).unwrap_or("").to_string();
        for tok in &qtokens {
            let matches = table
                .column_values(ci)
                .iter()
                .filter(|v| !v.is_null() && v.to_string().to_lowercase() == *tok)
                .count();
            if matches > 0 {
                let text = format_number(matches as f64);
                let mut fv =
                    base_features("count_filter", &cues, &qtokens, Some(&header), None, &text);
                fv.flag("count:has_filter_value");
                out.push(Candidate { text, kind: "count_filter".into(), features: fv });
            }
        }
    }
    // threshold counts for question numbers over numeric columns
    for &ci in &numeric_cols {
        let header = table.column_name(ci).unwrap_or("").to_string();
        for &n in &qnumbers {
            let vals: Vec<f64> =
                table.column_values(ci).iter().filter_map(Value::as_number).collect();
            let gt = vals.iter().filter(|&&v| v > n).count();
            let lt = vals.iter().filter(|&&v| v < n).count();
            for (kind, k) in [("count_gt", gt), ("count_lt", lt)] {
                if k > 0 {
                    let text = format_number(k as f64);
                    let fv = base_features(kind, &cues, &qtokens, Some(&header), None, &text);
                    out.push(Candidate { text, kind: kind.to_string(), features: fv });
                }
            }
        }
    }

    // --- filtered lookup candidates (multi-row answers joined) ---
    for fc in 0..table.n_cols() {
        // filter values that the question mentions
        let distinct = table.distinct(fc);
        for val in &distinct {
            let vs = val.to_string().to_lowercase();
            if vs.is_empty() || !sample.text.to_lowercase().contains(&vs) {
                continue;
            }
            let rows: Vec<usize> = (0..table.n_rows())
                .filter(|&r| table.cell(r, fc).is_some_and(|v| v.loosely_equals(val)))
                .collect();
            if rows.is_empty() {
                continue;
            }
            for tc in 0..table.n_cols() {
                if tc == fc {
                    continue;
                }
                let texts: Vec<String> = rows
                    .iter()
                    .filter_map(|&r| table.cell(r, tc))
                    .filter(|v| !v.is_null())
                    .map(|v| v.to_string())
                    .collect();
                if texts.is_empty() {
                    continue;
                }
                let text = texts.join(", ");
                let mut fv = base_features(
                    "lookup",
                    &cues,
                    &qtokens,
                    table.column_name(tc),
                    Some(&val.to_string()),
                    &text,
                );
                fv.flag("lookup:filter_mentioned");
                out.push(Candidate { text, kind: "lookup".into(), features: fv });
            }
        }
    }

    // --- row-arithmetic candidates ---
    for ri in 0..table.n_rows() {
        let row_ent = entity_of(ri);
        for (i, &ca) in numeric_cols.iter().enumerate() {
            for &cb in numeric_cols.iter().skip(i + 1) {
                let (Some(a), Some(b)) = (
                    table.cell(ri, ca).and_then(Value::as_number),
                    table.cell(ri, cb).and_then(Value::as_number),
                ) else {
                    continue;
                };
                let ha = table.column_name(ca).unwrap_or("");
                let hb = table.column_name(cb).unwrap_or("");
                let pair_header = format!("{ha} {hb}");
                let mut push = |kind: &str, value: f64| {
                    if !value.is_finite() {
                        return;
                    }
                    let text = format_number(round6(value));
                    let fv = base_features(
                        kind,
                        &cues,
                        &qtokens,
                        Some(&pair_header),
                        row_ent.as_deref(),
                        &text,
                    );
                    out.push(Candidate { text, kind: kind.to_string(), features: fv });
                };
                push("arith_diff", a - b);
                push("arith_diff", b - a);
                push("arith_sum", a + b);
                push("arith_avg2", (a + b) / 2.0);
                if b != 0.0 {
                    push("arith_pct", (a - b) / b);
                    push("arith_ratio", a / b);
                }
                if a != 0.0 {
                    push("arith_pct", (b - a) / a);
                    push("arith_ratio", b / a);
                }
                push("arith_prod", a * b);
            }
        }
    }

    // --- same-column row-pair arithmetic (same period, two line items) ---
    for &ci in &numeric_cols {
        let header = table.column_name(ci).unwrap_or("").to_string();
        let cells_in_col: Vec<(usize, f64)> = (0..table.n_rows())
            .filter_map(|ri| table.cell(ri, ci).and_then(Value::as_number).map(|n| (ri, n)))
            .collect();
        for (i, &(ra, a)) in cells_in_col.iter().enumerate() {
            for &(rb, b) in cells_in_col.iter().skip(i + 1) {
                let pair_ent = format!(
                    "{} {}",
                    entity_of(ra).unwrap_or_default(),
                    entity_of(rb).unwrap_or_default()
                );
                let mut push = |kind: &str, value: f64| {
                    if !value.is_finite() {
                        return;
                    }
                    let text = format_number(round6(value));
                    let fv =
                        base_features(kind, &cues, &qtokens, Some(&header), Some(&pair_ent), &text);
                    out.push(Candidate { text, kind: kind.to_string(), features: fv });
                };
                push("arith_diff", a - b);
                push("arith_diff", b - a);
                push("arith_sum", a + b);
                push("arith_avg2", (a + b) / 2.0);
                if b != 0.0 {
                    push("arith_pct", (a - b) / b);
                    push("arith_ratio", a / b);
                }
                if a != 0.0 {
                    push("arith_pct", (b - a) / a);
                    push("arith_ratio", b / a);
                }
            }
        }
    }

    // --- proportion candidates: cell / column sum ---
    for &ci in &numeric_cols {
        let header = table.column_name(ci).unwrap_or("").to_string();
        let sum: f64 = table.column_values(ci).iter().filter_map(Value::as_number).sum();
        if sum == 0.0 {
            continue;
        }
        for ri in 0..table.n_rows() {
            let Some(v) = table.cell(ri, ci).and_then(Value::as_number) else { continue };
            let text = format_number(round6(v / sum));
            let fv = base_features(
                "arith_prop",
                &cues,
                &qtokens,
                Some(&header),
                entity_of(ri).as_deref(),
                &text,
            );
            out.push(Candidate { text, kind: "arith_prop".into(), features: fv });
        }
    }

    // --- column-pair sum differences: sum(A) - sum(B) ---
    for (i, &ca) in numeric_cols.iter().enumerate() {
        for &cb in numeric_cols.iter().skip(i + 1) {
            let sa: f64 = table.column_values(ca).iter().filter_map(Value::as_number).sum();
            let sb: f64 = table.column_values(cb).iter().filter_map(Value::as_number).sum();
            let pair = format!(
                "{} {}",
                table.column_name(ca).unwrap_or(""),
                table.column_name(cb).unwrap_or("")
            );
            for (kind, v) in [("arith_sumdiff", sa - sb), ("arith_sumdiff", sb - sa)] {
                let text = format_number(round6(v));
                let fv = base_features(kind, &cues, &qtokens, Some(&pair), None, &text);
                out.push(Candidate { text, kind: kind.to_string(), features: fv });
            }
        }
    }

    // --- range lookups: rows with n1 <= col <= n2 for question numbers ---
    if qnumbers.len() >= 2 {
        for &ci in &numeric_cols {
            let header = table.column_name(ci).unwrap_or("").to_string();
            for (i, &n1) in qnumbers.iter().enumerate() {
                for &n2 in qnumbers.iter().skip(i + 1) {
                    let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
                    let rows: Vec<usize> = (0..table.n_rows())
                        .filter(|&r| {
                            table
                                .cell(r, ci)
                                .and_then(Value::as_number)
                                .is_some_and(|v| v >= lo && v <= hi)
                        })
                        .collect();
                    if rows.is_empty() {
                        continue;
                    }
                    for tc in 0..table.n_cols() {
                        if tc == ci {
                            continue;
                        }
                        let texts: Vec<String> = rows
                            .iter()
                            .filter_map(|&r| table.cell(r, tc))
                            .filter(|v| !v.is_null())
                            .map(|v| v.to_string())
                            .collect();
                        if texts.is_empty() {
                            continue;
                        }
                        let text = texts.join(", ");
                        let fv = base_features(
                            "lookup_range",
                            &cues,
                            &qtokens,
                            table.column_name(tc),
                            Some(&header),
                            &text,
                        );
                        out.push(Candidate { text, kind: "lookup_range".into(), features: fv });
                    }
                }
            }
        }
    }

    // --- filtered superlatives: among rows where col==v, argmax/argmin of
    // a numeric column, projected onto each other column ---
    for fc in 0..table.n_cols() {
        for val in table.distinct(fc) {
            let vs = val.to_string().to_lowercase();
            if vs.is_empty() || !sample.text.to_lowercase().contains(&vs) {
                continue;
            }
            let rows: Vec<usize> = (0..table.n_rows())
                .filter(|&r| table.cell(r, fc).is_some_and(|v| v.loosely_equals(&val)))
                .collect();
            if rows.len() < 2 {
                continue;
            }
            for &sc in &numeric_cols {
                if sc == fc {
                    continue;
                }
                let best_max = rows
                    .iter()
                    .filter_map(|&r| table.cell(r, sc).and_then(Value::as_number).map(|n| (n, r)))
                    .max_by(|a, b| a.0.total_cmp(&b.0));
                let best_min = rows
                    .iter()
                    .filter_map(|&r| table.cell(r, sc).and_then(Value::as_number).map(|n| (n, r)))
                    .min_by(|a, b| a.0.total_cmp(&b.0));
                for (kind, best) in
                    [("lookup_filter_max", best_max), ("lookup_filter_min", best_min)]
                {
                    let Some((_, ri)) = best else { continue };
                    for tc in 0..table.n_cols() {
                        if tc == sc || tc == fc {
                            continue;
                        }
                        let Some(v) = table.cell(ri, tc) else { continue };
                        if v.is_null() {
                            continue;
                        }
                        let text = v.to_string();
                        let fv = base_features(
                            kind,
                            &cues,
                            &qtokens,
                            table.column_name(sc),
                            Some(&val.to_string()),
                            &text,
                        );
                        out.push(Candidate { text, kind: kind.to_string(), features: fv });
                    }
                }
            }
        }
    }

    // --- compound counts: rows matching an equality filter AND a numeric
    // threshold from the question ---
    if !qnumbers.is_empty() {
        for fc in 0..table.n_cols() {
            for val in table.distinct(fc) {
                let vs = val.to_string().to_lowercase();
                if vs.is_empty() || !sample.text.to_lowercase().contains(&vs) {
                    continue;
                }
                for &nc in &numeric_cols {
                    if nc == fc {
                        continue;
                    }
                    for &n in &qnumbers {
                        for (kind, pred) in [
                            (
                                "count_filter_gt",
                                Box::new(move |v: f64| v > n) as Box<dyn Fn(f64) -> bool>,
                            ),
                            ("count_filter_lt", Box::new(move |v: f64| v < n)),
                        ] {
                            let k = (0..table.n_rows())
                                .filter(|&r| {
                                    table.cell(r, fc).is_some_and(|v| v.loosely_equals(&val))
                                        && table
                                            .cell(r, nc)
                                            .and_then(Value::as_number)
                                            .is_some_and(&pred)
                                })
                                .count();
                            if k > 0 {
                                let text = format_number(k as f64);
                                let fv = base_features(
                                    kind,
                                    &cues,
                                    &qtokens,
                                    table.column_name(nc),
                                    Some(&val.to_string()),
                                    &text,
                                );
                                out.push(Candidate { text, kind: kind.to_string(), features: fv });
                            }
                        }
                    }
                }
            }
        }
    }

    // --- yes/no candidates ---
    if cues.yesno {
        let truth = resolve_comparison(sample, &table);
        for yes in [true, false] {
            let mut fv =
                base_features("yesno", &cues, &qtokens, None, None, if yes { "yes" } else { "no" });
            match truth {
                Some(t) if t == yes => fv.flag("yesno:consistent"),
                Some(_) => fv.flag("yesno:inconsistent"),
                None => fv.flag("yesno:unresolved"),
            }
            out.push(Candidate {
                text: if yes { "yes" } else { "no" }.to_string(),
                kind: "yesno".into(),
                features: fv,
            });
        }
    }

    // --- context-number candidates (text evidence not in any record) ---
    for sentence in &sample.context {
        let sent_tokens = tokenize(sentence);
        for (ti, tok) in sent_tokens.iter().enumerate() {
            if tok.parse::<f64>().is_ok() {
                let mut fv = base_features("ctx_num", &cues, &qtokens, None, None, tok);
                fv.add("ov:ctx_sent", overlap(&qtokens, sentence));
                // The words immediately before the number name what it
                // measures ("a budget of 700"); their overlap with the
                // question is the column-selection evidence for text spans.
                let lo = ti.saturating_sub(4);
                let prefix = sent_tokens[lo..ti].join(" ");
                fv.add("ov:ctx_prefix", overlap(&qtokens, &prefix));
                out.push(Candidate { text: tok.clone(), kind: "ctx_num".into(), features: fv });
            }
        }
    }

    // Deduplicate by (normalized text, dominant type flag is folded by
    // keeping the first occurrence — scores differ by provenance anyway).
    out
}

fn round6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

/// Tries to resolve a comparative yes/no question: find two (entity,
/// column) referenced numbers in question order and compare them.
fn resolve_comparison(sample: &Sample, table: &Table) -> Option<bool> {
    let lower = sample.text.to_lowercase();
    let ecol = textops::entity_column(table);
    // Collect (position, value) for every resolvable entity+numeric-column pair.
    let mut refs: Vec<(usize, f64)> = Vec::new();
    for ri in 0..table.n_rows() {
        let ent = table.cell(ri, ecol)?.to_string().to_lowercase();
        if ent.is_empty() {
            continue;
        }
        let Some(pos) = lower.find(&ent) else { continue };
        for ci in 0..table.n_cols() {
            if ci == ecol {
                continue;
            }
            let header = table.column_name(ci)?.to_lowercase();
            if header.is_empty() || !lower.contains(&header) {
                continue;
            }
            if let Some(n) = table.cell(ri, ci).and_then(Value::as_number) {
                refs.push((pos, n));
            }
        }
    }
    refs.sort_by_key(|&(p, _)| p);
    refs.dedup_by_key(|&mut (p, _)| p);
    if refs.len() >= 2 {
        Some(refs[0].1 > refs[1].1)
    } else {
        None
    }
}

/// The learned QA model: a binary ranker over candidates.
#[derive(Debug, Clone)]
pub struct QaModel {
    ranker: LinearModel,
    space: CandidateSpace,
}

/// Which candidate kinds the model may answer with. `CellsAndAggs` emulates
/// cell-selection models like TAPAS, which handle lookups and simple
/// aggregation but not free-form arithmetic (paper Table III: TAPAS 18.9 EM
/// on TAT-QA vs TAGOP 55.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateSpace {
    #[default]
    Full,
    CellsAndAggs,
}

impl CandidateSpace {
    /// Whether a candidate kind is available under this space.
    pub fn allows(self, kind: &str) -> bool {
        match self {
            CandidateSpace::Full => true,
            CandidateSpace::CellsAndAggs => {
                matches!(
                    kind,
                    "cell"
                        | "agg_max"
                        | "agg_min"
                        | "agg_sum"
                        | "agg_avg"
                        | "argmax_ent"
                        | "argmin_ent"
                        | "count_all"
                        | "count_filter"
                        | "lookup"
                        | "ctx_num"
                )
            }
        }
    }
}

impl QaModel {
    /// An untrained model (uniform scores) — the TAPEX-without-fine-tuning
    /// baseline of Table VI.
    pub fn untrained() -> QaModel {
        QaModel { ranker: LinearModel::zeros(2), space: CandidateSpace::Full }
    }

    /// Trains the ranker on labeled QA samples.
    pub fn train(samples: &[Sample]) -> QaModel {
        Self::train_with(samples, TrainConfig { epochs: 8, ..TrainConfig::default() })
    }

    /// Trains with explicit hyperparameters.
    pub fn train_with(samples: &[Sample], cfg: TrainConfig) -> QaModel {
        Self::train_in_space(samples, cfg, CandidateSpace::Full)
    }

    /// Trains a model restricted to a candidate space.
    pub fn train_in_space(samples: &[Sample], cfg: TrainConfig, space: CandidateSpace) -> QaModel {
        let mut model = QaModel { ranker: LinearModel::zeros(2), space };
        let examples = model.examples(samples);
        model.ranker = LinearModel::train(&examples, 2, cfg);
        model
    }

    /// Continues training (few-shot fine-tuning / augmentation stage 2).
    pub fn fine_tune(&mut self, samples: &[Sample], cfg: TrainConfig) {
        let examples = self.examples(samples);
        self.ranker.train_more(&examples, cfg);
    }

    fn examples(&self, samples: &[Sample]) -> Vec<(FeatureVec, usize)> {
        let mut out = Vec::new();
        for s in samples {
            let Some(gold) = s.label.as_answer() else { continue };
            let gold_norm = normalize_answer(gold);
            let candidates: Vec<Candidate> =
                generate_candidates(s).into_iter().filter(|c| self.space.allows(&c.kind)).collect();
            let has_pos = candidates.iter().any(|c| normalize_answer(&c.text) == gold_norm);
            if !has_pos {
                continue; // unanswerable under the candidate space
            }
            for c in candidates {
                let label = usize::from(normalize_answer(&c.text) == gold_norm);
                out.push((c.features, label));
            }
        }
        out
    }

    /// Predicts the answer text for a sample.
    pub fn predict(&self, sample: &Sample) -> String {
        let candidates: Vec<Candidate> = generate_candidates(sample)
            .into_iter()
            .filter(|c| self.space.allows(&c.kind))
            .collect();
        candidates
            .into_iter()
            .max_by(|a, b| {
                let sa = self.ranker.class_score(&a.features, 1)
                    - self.ranker.class_score(&a.features, 0);
                let sb = self.ranker.class_score(&b.features, 1)
                    - self.ranker.class_score(&b.features, 0);
                sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|c| c.text)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpora::{wikisql_like, CorpusConfig};

    fn table() -> Table {
        Table::from_strings(
            "Departments",
            &[
                vec!["department", "total deputies", "budget"],
                vec!["Commerce", "18", "500"],
                vec!["Defense", "42", "9000"],
                vec!["Treasury", "30", "3000"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn candidates_cover_cells_and_aggregates() {
        let s = Sample::qa(table(), "What is the total budget?", "12500");
        let cands = generate_candidates(&s);
        let texts: Vec<&str> = cands.iter().map(|c| c.text.as_str()).collect();
        assert!(texts.contains(&"Defense"));
        assert!(texts.contains(&"12500"), "sum missing: {texts:?}");
        assert!(texts.contains(&"42"));
        assert!(texts.contains(&"3")); // row count
    }

    #[test]
    fn candidates_include_percentage_change() {
        let t = Table::from_strings(
            "fin",
            &[vec!["item", "2019", "2018"], vec!["Equity", "3200", "4000"]],
        )
        .unwrap();
        let s = Sample::qa(
            t,
            "In percentage terms, how did Equity move between 2018 and 2019?",
            "-0.2",
        );
        let cands = generate_candidates(&s);
        assert!(cands.iter().any(|c| c.text == "-0.2"), "pct candidate missing");
    }

    #[test]
    fn candidates_from_context_records() {
        let mut s = Sample::qa(table(), "What is the budget of Energy?", "700");
        s.context = vec!["Energy has a total deputies of 12 and a budget of 700.".to_string()];
        let cands = generate_candidates(&s);
        assert!(cands.iter().any(|c| c.text == "700"));
    }

    #[test]
    fn yes_no_candidates_for_comparatives() {
        let s = Sample::qa(
            table(),
            "Was the budget of Defense greater than the budget of Treasury?",
            "yes",
        );
        let cands = generate_candidates(&s);
        assert!(cands.iter().any(|c| c.text == "yes"));
        assert!(cands.iter().any(|c| c.text == "no"));
    }

    #[test]
    fn trained_model_beats_untrained() {
        let b = wikisql_like(CorpusConfig {
            n_tables: 40,
            train_per_table: 8,
            eval_per_table: 2,
            seed: 3,
        });
        let trained = QaModel::train(&b.gold.train);
        let untrained = QaModel::untrained();
        let em = |m: &QaModel| {
            let hits = b
                .gold
                .dev
                .iter()
                .filter(|s| {
                    normalize_answer(&m.predict(s))
                        == normalize_answer(s.label.as_answer().unwrap())
                })
                .count();
            hits as f64 / b.gold.dev.len() as f64
        };
        let em_trained = em(&trained);
        let em_untrained = em(&untrained);
        assert!(
            em_trained > em_untrained + 0.15,
            "trained {em_trained:.3} vs untrained {em_untrained:.3}"
        );
        assert!(em_trained > 0.3, "trained EM too low: {em_trained:.3}");
    }

    #[test]
    fn same_column_pair_arithmetic_candidates() {
        // Difference of two rows' values in the same column (a common
        // FinQA/TAT-QA gold shape).
        let t = Table::from_strings(
            "fin",
            &[vec!["item", "2019"], vec!["Revenue", "8800"], vec!["Costs", "6100"]],
        )
        .unwrap();
        let s = Sample::qa(
            t,
            "How far apart are Revenue's 2019 figure and Costs's 2019 figure?",
            "2700",
        );
        let cands = generate_candidates(&s);
        assert!(cands.iter().any(|c| c.text == "2700" && c.kind == "arith_diff"));
        assert!(cands.iter().any(|c| c.text == "-2700"));
    }

    #[test]
    fn proportion_and_sumdiff_candidates() {
        let t = Table::from_strings(
            "fin",
            &[
                vec!["item", "2019", "2018"],
                vec!["Revenue", "8000", "7000"],
                vec!["Costs", "2000", "3000"],
            ],
        )
        .unwrap();
        let s = Sample::qa(t, "What share of the 2019 total does Costs account for?", "0.2");
        let cands = generate_candidates(&s);
        assert!(
            cands.iter().any(|c| c.text == "0.2" && c.kind == "arith_prop"),
            "proportion missing"
        );
        // sum(2019)=10000, sum(2018)=10000 -> sumdiff 0
        assert!(cands.iter().any(|c| c.kind == "arith_sumdiff"));
    }

    #[test]
    fn range_lookup_candidates() {
        let t = Table::from_strings(
            "t",
            &[vec!["name", "pts"], vec!["a", "10"], vec!["b", "20"], vec!["c", "30"]],
        )
        .unwrap();
        let s = Sample::qa(t, "Which name has pts of at least 15 and at most 25?", "b");
        let cands = generate_candidates(&s);
        assert!(
            cands.iter().any(|c| c.text == "b" && c.kind == "lookup_range"),
            "range lookup missing"
        );
    }

    #[test]
    fn filtered_superlative_candidates() {
        let t = Table::from_strings(
            "t",
            &[
                vec!["name", "group", "pts"],
                vec!["a", "x", "10"],
                vec!["b", "x", "25"],
                vec!["c", "y", "30"],
            ],
        )
        .unwrap();
        let s = Sample::qa(
            t,
            "Name the entry that leads in pts, considering only rows where group equals x?",
            "b",
        );
        let cands = generate_candidates(&s);
        assert!(
            cands.iter().any(|c| c.text == "b" && c.kind == "lookup_filter_max"),
            "filtered superlative missing"
        );
    }

    #[test]
    fn compound_count_candidates() {
        let t = Table::from_strings(
            "t",
            &[
                vec!["name", "group", "pts"],
                vec!["a", "x", "10"],
                vec!["b", "x", "25"],
                vec!["c", "y", "30"],
            ],
        )
        .unwrap();
        let s = Sample::qa(t, "How many entries have group x while pts exceeds 15?", "1");
        let cands = generate_candidates(&s);
        assert!(
            cands.iter().any(|c| c.text == "1" && c.kind == "count_filter_gt"),
            "compound count missing"
        );
    }

    #[test]
    fn candidate_space_restriction() {
        let t = Table::from_strings(
            "fin",
            &[vec!["item", "2019", "2018"], vec!["Equity", "3200", "4000"]],
        )
        .unwrap();
        let s = Sample::qa(
            t,
            "In percentage terms, how did Equity move between 2018 and 2019?",
            "-0.2",
        );
        let full = generate_candidates(&s);
        assert!(full.iter().any(|c| c.kind.starts_with("arith")));
        assert!(CandidateSpace::CellsAndAggs.allows("cell"));
        assert!(!CandidateSpace::CellsAndAggs.allows("arith_pct"));
    }

    #[test]
    fn lookup_candidates_join_multi_rows() {
        let t = Table::from_strings(
            "t",
            &[
                vec!["name", "group", "pts"],
                vec!["a", "x", "1"],
                vec!["b", "x", "2"],
                vec!["c", "y", "3"],
            ],
        )
        .unwrap();
        let s = Sample::qa(t, "Tell me the name recorded where group equals x?", "a, b");
        let cands = generate_candidates(&s);
        assert!(cands.iter().any(|c| c.text == "a, b"), "joined lookup missing");
    }
}
