//! Fact-verification models.
//!
//! [`VerifierModel`] is the reproduction's counterpart of the FEVEROUS
//! baseline's verdict predictor / fine-tuned TAPAS: a max-ent classifier
//! over the verification-signal features, trained on whatever dataset the
//! experiment supplies (gold, UCTR synthetic, MQA-QG synthetic, few-shot
//! mixes). Evidence-restricted variants (table-only / sentence-only)
//! reproduce the weak supervised baselines in Table IV.

use crate::features::verifier_features;
use crate::linear::{FeatureVec, LinearModel, TrainConfig};
use rand::Rng;
use tabular::Table;
use uctr::{Sample, Verdict};

/// Which evidence the model is allowed to look at (Table IV baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvidenceView {
    Full,
    TableOnly,
    SentenceOnly,
}

/// Verdict inventory of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictSpace {
    /// Supported/Refuted (FEVEROUS practice, following Malon \[35\]).
    TwoWay,
    /// Supported/Refuted/Unknown (SEM-TAB-FACTS).
    ThreeWay,
}

impl VerdictSpace {
    fn n_classes(self) -> usize {
        match self {
            VerdictSpace::TwoWay => 2,
            VerdictSpace::ThreeWay => 3,
        }
    }

    fn to_class(self, v: Verdict) -> usize {
        match v {
            Verdict::Supported => 0,
            Verdict::Refuted => 1,
            Verdict::Unknown => match self {
                VerdictSpace::TwoWay => 1, // folded into Refuted
                VerdictSpace::ThreeWay => 2,
            },
        }
    }

    fn verdict_of(self, c: usize) -> Verdict {
        match c {
            0 => Verdict::Supported,
            1 => Verdict::Refuted,
            _ => Verdict::Unknown,
        }
    }
}

/// A trainable fact-verification model.
#[derive(Debug, Clone)]
pub struct VerifierModel {
    model: LinearModel,
    space: VerdictSpace,
    view: EvidenceView,
}

impl VerifierModel {
    /// Trains on labeled samples.
    pub fn train(samples: &[Sample], space: VerdictSpace, view: EvidenceView) -> VerifierModel {
        Self::train_with(samples, space, view, TrainConfig::default())
    }

    /// Trains with explicit hyperparameters.
    pub fn train_with(
        samples: &[Sample],
        space: VerdictSpace,
        view: EvidenceView,
        cfg: TrainConfig,
    ) -> VerifierModel {
        let examples: Vec<(FeatureVec, usize)> = samples
            .iter()
            .filter_map(|s| {
                let v = s.label.as_verdict()?;
                Some((Self::features(s, view), space.to_class(v)))
            })
            .collect();
        let model = LinearModel::train(&examples, space.n_classes(), cfg);
        VerifierModel { model, space, view }
    }

    /// Continues training on more samples (few-shot fine-tuning / data
    /// augmentation second stage).
    pub fn fine_tune(&mut self, samples: &[Sample], cfg: TrainConfig) {
        let examples: Vec<(FeatureVec, usize)> = samples
            .iter()
            .filter_map(|s| {
                let v = s.label.as_verdict()?;
                Some((Self::features(s, self.view), self.space.to_class(v)))
            })
            .collect();
        self.model.train_more(&examples, cfg);
    }

    fn features(sample: &Sample, view: EvidenceView) -> FeatureVec {
        let restricted: Sample = match view {
            EvidenceView::Full => sample.clone(),
            EvidenceView::TableOnly => {
                let mut s = sample.clone();
                s.context.clear();
                s
            }
            EvidenceView::SentenceOnly => {
                let mut s = sample.clone();
                s.table = Table::from_strings(&sample.table.title, &[vec![]])
                    .map(tabular::SharedTable::new)
                    .unwrap_or_else(|_| sample.table.clone());
                s
            }
        };
        verifier_features(&restricted)
    }

    /// Predicts a verdict for a sample.
    pub fn predict(&self, sample: &Sample) -> Verdict {
        let fv = Self::features(sample, self.view);
        self.space.verdict_of(self.model.predict(&fv))
    }

    /// Label accuracy over a set.
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|s| {
                let gold = s.label.as_verdict().map(|v| self.space.to_class(v));
                let pred = Some(self.space.to_class(self.predict(s)));
                gold == pred
            })
            .count();
        correct as f64 / samples.len() as f64
    }
}

/// Random-guess baseline (Tables IV, V).
pub struct RandomVerifier {
    space: VerdictSpace,
}

impl RandomVerifier {
    pub fn new(space: VerdictSpace) -> RandomVerifier {
        RandomVerifier { space }
    }

    pub fn predict(&self, rng: &mut impl Rng) -> Verdict {
        let c = rng.gen_range(0..self.space.n_classes());
        self.space.verdict_of(c)
    }

    pub fn accuracy(&self, samples: &[Sample], rng: &mut impl Rng) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|s| {
                s.label.as_verdict().map(|v| self.space.to_class(v))
                    == Some(self.space.to_class(self.predict(rng)))
            })
            .count();
        correct as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpora::{semtab_like, CorpusConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trained_verifier_beats_random_on_gold() {
        let b = semtab_like(CorpusConfig {
            n_tables: 40,
            train_per_table: 6,
            eval_per_table: 2,
            seed: 5,
        });
        let model = VerifierModel::train(&b.gold.train, VerdictSpace::ThreeWay, EvidenceView::Full);
        let acc = model.accuracy(&b.gold.dev);
        let mut rng = StdRng::seed_from_u64(1);
        let rand_acc = RandomVerifier::new(VerdictSpace::ThreeWay).accuracy(&b.gold.dev, &mut rng);
        assert!(acc > rand_acc + 0.12, "trained {acc:.3} vs random {rand_acc:.3}");
    }

    #[test]
    fn two_way_folds_unknown() {
        assert_eq!(VerdictSpace::TwoWay.to_class(Verdict::Unknown), 1);
        assert_eq!(VerdictSpace::ThreeWay.to_class(Verdict::Unknown), 2);
    }

    #[test]
    fn sentence_only_fails_on_table_claims() {
        let b = semtab_like(CorpusConfig {
            n_tables: 80,
            train_per_table: 6,
            eval_per_table: 8,
            seed: 9,
        });
        let full = VerifierModel::train(&b.gold.train, VerdictSpace::ThreeWay, EvidenceView::Full);
        let blind =
            VerifierModel::train(&b.gold.train, VerdictSpace::ThreeWay, EvidenceView::SentenceOnly);
        // SEM-TAB-FACTS claims are table-grounded: hiding the table hurts.
        let (af, ab) = (full.accuracy(&b.gold.dev), blind.accuracy(&b.gold.dev));
        assert!(af > ab, "full {af:.3} vs blind {ab:.3}");
    }

    #[test]
    fn fine_tuning_improves_over_few_shot_alone() {
        let b = semtab_like(CorpusConfig {
            n_tables: 40,
            train_per_table: 6,
            eval_per_table: 2,
            seed: 11,
        });
        let few: Vec<Sample> = b.gold.train.iter().take(10).cloned().collect();
        let few_only = VerifierModel::train(&few, VerdictSpace::ThreeWay, EvidenceView::Full);
        let mut pretrained =
            VerifierModel::train(&b.gold.train, VerdictSpace::ThreeWay, EvidenceView::Full);
        pretrained.fine_tune(&few, TrainConfig { epochs: 2, ..TrainConfig::default() });
        assert!(pretrained.accuracy(&b.gold.dev) >= few_only.accuracy(&b.gold.dev));
    }

    #[test]
    fn random_verifier_near_chance() {
        let b = semtab_like(CorpusConfig::tiny());
        let mut rng = StdRng::seed_from_u64(3);
        let acc = RandomVerifier::new(VerdictSpace::TwoWay).accuracy(&b.gold.dev, &mut rng);
        assert!(acc > 0.1 && acc < 0.9);
    }
}
