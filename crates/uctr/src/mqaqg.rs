//! MQA-QG baseline reimplementation (Pan et al. \[38\]).
//!
//! The paper's closest prior work and the main unsupervised baseline in
//! Tables III–VI. MQA-QG finds a bridge entity connecting the table and
//! text, verbalizes the entity's row with `DescribeEnt`, and composes a
//! simple question/claim from the description. Its key deficiency (per the
//! paper) is that it "cannot integrate the information from multiple rows
//! using complex underlying logic" — every sample it produces involves a
//! single cell or a single row, which is exactly what this module
//! implements.

use crate::pipeline::{TableWithContext, TaskKind};
use crate::sample::{AnswerKind, EvidenceType, Label, ProgramKind, Sample, Verdict};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tabular::{Table, Value};
use textops::{describe_row, entity_column};

/// MQA-QG-style generator configuration.
#[derive(Debug, Clone)]
pub struct MqaQgConfig {
    pub task: TaskKind,
    pub samples_per_table: usize,
    pub seed: u64,
}

impl MqaQgConfig {
    pub fn qa() -> MqaQgConfig {
        MqaQgConfig { task: TaskKind::QuestionAnswering, samples_per_table: 10, seed: 29 }
    }

    pub fn verification() -> MqaQgConfig {
        MqaQgConfig { task: TaskKind::FactVerification, samples_per_table: 10, seed: 29 }
    }
}

/// Generates simple single-cell samples from tables (and bridge samples
/// when a paragraph is present).
pub fn generate_mqaqg(inputs: &[TableWithContext], config: &MqaQgConfig) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    for input in inputs {
        for _ in 0..config.samples_per_table {
            if let Some(mut s) =
                one_sample(&input.table, input.paragraph.as_deref(), config, &mut rng)
            {
                s.topic = input.topic.clone();
                out.push(s);
            }
        }
    }
    out
}

fn one_sample(
    table: &Table,
    paragraph: Option<&str>,
    config: &MqaQgConfig,
    rng: &mut StdRng,
) -> Option<Sample> {
    if table.n_rows() == 0 || table.n_cols() < 2 {
        return None;
    }
    // MQA-QG also generates from the textual side (its text→text and
    // text→table operators): a third of the samples verbalize a row into a
    // sentence and use it as the only evidence.
    if rng.gen_bool(1.0 / 3.0) {
        return text_sample(table, config, rng);
    }
    let ecol = entity_column(table);
    let row = rng.gen_range(0..table.n_rows());
    let entity = table.cell(row, ecol).filter(|v| !v.is_null())?.to_string();
    let cols: Vec<usize> = (0..table.n_cols())
        .filter(|&c| c != ecol && table.cell(row, c).is_some_and(|v| !v.is_null()))
        .collect();
    let &col = cols.choose(rng)?;
    let col_name = table.column_name(col)?.to_string();
    let value = table.cell(row, col)?.to_string();

    // Bridge mode: if the paragraph mentions the entity, the sample joins
    // the describing sentence and the table (MQA-QG's table+text hop).
    let bridge = paragraph
        .filter(|p| p.to_lowercase().contains(&entity.to_lowercase()))
        .map(tabular::text::split_sentences);

    match config.task {
        TaskKind::QuestionAnswering => {
            let text = match rng.gen_range(0..3) {
                0 => format!("What is the {col_name} of {entity}?"),
                1 => format!("What {col_name} does {entity} have?"),
                _ => format!("Which {col_name} is listed for {entity}?"),
            };
            let (evidence, context) = match bridge {
                Some(sents) => (EvidenceType::TableText, sents),
                None => (EvidenceType::TableOnly, Vec::new()),
            };
            Some(Sample {
                table: table.clone().into(),
                context,
                text,
                label: Label::Answer(value),
                evidence,
                program: ProgramKind::None,
                answer_kind: AnswerKind::Span,
                topic: String::new(),
            })
        }
        TaskKind::FactVerification => {
            // DescribeEnt the row, then claim one (possibly corrupted) fact.
            let _sentence = describe_row(table, row, rng)?;
            let supported = rng.gen_bool(0.5);
            let (claim_value, verdict) = if supported {
                (value.clone(), Verdict::Supported)
            } else {
                let alternatives: Vec<String> = table
                    .column_values(col)
                    .iter()
                    .filter(|v| !v.is_null() && v.to_string() != value)
                    .map(Value::to_string)
                    .collect();
                (alternatives.choose(rng)?.clone(), Verdict::Refuted)
            };
            let text = match rng.gen_range(0..2) {
                0 => format!("{entity} has a {col_name} of {claim_value}."),
                _ => format!("The {col_name} of {entity} is {claim_value}."),
            };
            let (evidence, context) = match bridge {
                Some(sents) => (EvidenceType::TableText, sents),
                None => (EvidenceType::TableOnly, Vec::new()),
            };
            Some(Sample {
                table: table.clone().into(),
                context,
                text,
                label: Label::Verdict(verdict),
                evidence,
                program: ProgramKind::None,
                answer_kind: AnswerKind::NotApplicable,
                topic: String::new(),
            })
        }
    }
}

/// A text-evidence sample: one row verbalized into a sentence, with a
/// lookup question or single-fact claim about it.
fn text_sample(table: &Table, config: &MqaQgConfig, rng: &mut StdRng) -> Option<Sample> {
    let row = rng.gen_range(0..table.n_rows());
    let sentence = describe_row(table, row, rng)?;
    let ecol = entity_column(table);
    let entity = table.cell(row, ecol).filter(|v| !v.is_null())?.to_string();
    let cols: Vec<usize> = (0..table.n_cols())
        .filter(|&c| c != ecol && table.cell(row, c).is_some_and(|v| !v.is_null()))
        .collect();
    let &col = cols.choose(rng)?;
    let col_name = table.column_name(col)?.to_string();
    let value = table.cell(row, col)?.to_string();
    let empty = Table::from_strings(&table.title, &[vec![]]).ok()?;
    match config.task {
        TaskKind::QuestionAnswering => Some(Sample {
            table: empty.clone().into(),
            context: vec![sentence],
            text: format!("What is the {col_name} of {entity}?"),
            label: Label::Answer(value),
            evidence: EvidenceType::TextOnly,
            program: ProgramKind::None,
            answer_kind: AnswerKind::Span,
            topic: String::new(),
        }),
        TaskKind::FactVerification => {
            let supported = rng.gen_bool(0.5);
            let (claim_value, verdict) = if supported {
                (value.clone(), Verdict::Supported)
            } else {
                let alternatives: Vec<String> = table
                    .column_values(col)
                    .iter()
                    .filter(|v| !v.is_null() && v.to_string() != value)
                    .map(Value::to_string)
                    .collect();
                (alternatives.choose(rng)?.clone(), Verdict::Refuted)
            };
            Some(Sample {
                table: empty.clone().into(),
                context: vec![sentence],
                text: format!("{entity} has a {col_name} of {claim_value}."),
                label: Label::Verdict(verdict),
                evidence: EvidenceType::TextOnly,
                program: ProgramKind::None,
                answer_kind: AnswerKind::NotApplicable,
                topic: String::new(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TableWithContext;

    fn inputs() -> Vec<TableWithContext> {
        let t = Table::from_strings(
            "Teams",
            &[vec!["team", "points", "wins"], vec!["Reds", "77", "21"], vec!["Blues", "64", "18"]],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"));
        vec![TableWithContext {
            table: t.into(),
            paragraph: Some("The Reds were founded in 1910 in Oslo.".to_string()),
            topic: "sports".into(),
        }]
    }

    #[test]
    fn qa_samples_are_single_cell_lookups() {
        let samples = generate_mqaqg(&inputs(), &MqaQgConfig::qa());
        assert!(!samples.is_empty());
        for s in &samples {
            let ans = s.label.as_answer().unwrap_or_else(|| panic!("qa label"));
            assert!(!ans.is_empty());
            match s.evidence {
                // Table samples: the answer is a cell of the table.
                EvidenceType::TableOnly | EvidenceType::TableText => {
                    let found = s.table.rows().iter().flatten().any(|v| v.to_string() == ans);
                    assert!(found, "answer {ans} not a table cell");
                }
                // Text samples: the answer appears in the sentence.
                EvidenceType::TextOnly => {
                    assert!(s.context[0].contains(ans), "answer {ans} not in sentence");
                }
            }
        }
    }

    #[test]
    fn text_samples_generated() {
        // Text samples are drawn with probability 1/3; use enough draws that
        // their absence would be a real bug, not seed luck.
        let cfg = MqaQgConfig { samples_per_table: 40, ..MqaQgConfig::qa() };
        let samples = generate_mqaqg(&inputs(), &cfg);
        assert!(samples.iter().any(|s| s.evidence == EvidenceType::TextOnly));
    }

    #[test]
    fn verification_samples_have_both_verdicts() {
        let samples = generate_mqaqg(&inputs(), &MqaQgConfig::verification());
        let sup =
            samples.iter().filter(|s| s.label.as_verdict() == Some(Verdict::Supported)).count();
        let refuted =
            samples.iter().filter(|s| s.label.as_verdict() == Some(Verdict::Refuted)).count();
        assert!(sup > 0 && refuted > 0, "sup={sup} ref={refuted}");
    }

    #[test]
    fn bridge_entity_creates_table_text_samples() {
        let samples = generate_mqaqg(&inputs(), &MqaQgConfig::qa());
        // The paragraph mentions "Reds", so Reds-row samples must bridge.
        assert!(samples
            .iter()
            .any(|s| s.evidence == EvidenceType::TableText && !s.context.is_empty()));
    }

    #[test]
    fn no_complex_programs() {
        let samples = generate_mqaqg(&inputs(), &MqaQgConfig::qa());
        assert!(samples.iter().all(|s| s.program == ProgramKind::None));
        assert!(samples.iter().all(|s| s.answer_kind == AnswerKind::Span));
    }
}
