//! Template mining (paper §IV-B, the acquisition half).
//!
//! The paper obtains its template pool by *mining*: concrete programs from
//! seed corpora (SQUALL for SQL, Logic2Text for logical forms, FinQA for
//! arithmetic) are parsed, their column references and literals lifted into
//! typed holes, and the resulting templates deduplicated by the filtration
//! procedure. This module is that flow for the reproduction:
//!
//! * [`Miner::mine_program`] — parse one concrete program, abstract it via
//!   the per-crate `abstract_*` functions, typecheck it with the static
//!   analyzer and admit it into a [`TemplateBank`] (which dedups on the
//!   prefixed cross-kind signature);
//! * [`Miner::mine_sample`] — the same flow driven from a [`Sample`]'s
//!   serialized gold program (the `corpora` benchmarks are mined this way);
//! * [`Miner::mine_synthetic_corpus`] — a deterministic synthetic seed
//!   corpus standing in for the licensed originals: an enumerated family
//!   of concrete SQL queries and arithmetic step programs over fixed probe
//!   tables, plus concrete logical-form claims obtained by instantiating
//!   [`crate::autogen`] proposals.
//!
//! Mining also enforces a per-kind [`CostBudget`]: the pipeline samples
//! templates uniformly within a kind, so a bank's throughput is the *mean*
//! per-attempt cost of its templates, and the miner is the only place that
//! mean can be controlled. Concrete programs whose instantiation cost is
//! dominated by their shape class — multi-atom SQL WHERE trees, 3+-step
//! arithmetic chains, deeply nested logical forms — are turned away before
//! abstraction ([`MineOutcome::OverBudget`]), keeping the mined bank's
//! per-sample cost within the CI throughput gate's tolerance of the builtin
//! bank (`bench_pipeline --check-floor`).
//!
//! Everything here is deterministic for a fixed seed, so the mined corpus
//! file CI commits (`ci/mined_templates.txt`) is reproducible bit-for-bit.

use crate::autogen::AutoGenerator;
use crate::program::AnyTemplate;
use crate::sample::{ProgramKind, Sample};
use crate::telemetry::KindSlot;
use crate::templates::TemplateBank;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rustc_hash::FxHashSet;
use tabular::Table;

/// How one concrete program fared in the mining flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MineOutcome {
    /// Abstracted to a novel, well-typed template; admitted.
    Mined,
    /// Well-typed but its signature is already in the bank (filtration).
    Duplicate,
    /// Novel by signature but canonically equivalent to the admitted
    /// template at the carried bank index (see the per-crate `canon`
    /// modules): same instantiation behavior under every RNG stream.
    /// Pruned, and recorded as a [`MergeRecord`] so the differential
    /// harness (`crate::analysis::verify_merge`) can witness the merge.
    EquivalentTo(usize),
    /// The abstraction is ill-typed; the analyzer's diagnostics rejected it.
    Rejected,
    /// Well-typed but convicted by the abstract interpreter (A-rules):
    /// constant output, always-true/false claim, or a provably empty
    /// result set — it can never produce useful training signal.
    Degenerate,
    /// Parsed fine but exceeds the miner's per-kind [`CostBudget`].
    OverBudget,
    /// The concrete program text does not parse in its DSL.
    ParseFailed,
    /// The source carries no program (e.g. a text-only sample).
    NotAProgram,
}

/// Per-kind mining counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    pub mined: usize,
    pub duplicates: usize,
    /// Canonically equivalent to an earlier admission; pruned with a
    /// recorded merge.
    pub equivalent: usize,
    pub rejected: usize,
    pub degenerate: usize,
    pub over_budget: usize,
    pub parse_failures: usize,
}

/// Counters for one mining run, stratified by template kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinerStats {
    per_kind: [KindStats; 3],
    /// Sources carrying no program at all.
    pub skipped: usize,
}

impl MinerStats {
    /// The counters of one template kind (zero for [`KindSlot::None`]).
    pub fn kind(&self, kind: KindSlot) -> KindStats {
        self.per_kind.get(kind as usize).copied().unwrap_or_default()
    }

    /// Templates admitted across all kinds.
    pub fn mined_total(&self) -> usize {
        self.per_kind.iter().map(|k| k.mined).sum()
    }

    /// Canonical equivalents pruned across all kinds — the gap between the
    /// signatures the miner saw as novel and the templates it admitted.
    pub fn equivalent_total(&self) -> usize {
        self.per_kind.iter().map(|k| k.equivalent).sum()
    }

    fn bump(&mut self, kind: KindSlot, outcome: MineOutcome) {
        let Some(k) = self.per_kind.get_mut(kind as usize) else {
            self.skipped += 1;
            return;
        };
        match outcome {
            MineOutcome::Mined => k.mined += 1,
            MineOutcome::Duplicate => k.duplicates += 1,
            MineOutcome::EquivalentTo(_) => k.equivalent += 1,
            MineOutcome::Rejected => k.rejected += 1,
            MineOutcome::Degenerate => k.degenerate += 1,
            MineOutcome::OverBudget => k.over_budget += 1,
            MineOutcome::ParseFailed => k.parse_failures += 1,
            MineOutcome::NotAProgram => self.skipped += 1,
        }
    }
}

/// Per-kind instantiation-cost caps applied during mining.
///
/// The costs were measured per shape class against the builtin bank (see
/// DESIGN.md): SQL attempt cost grows with every extra WHERE atom (a 2-cond
/// tree costs ~1.8× a single atom), arithmetic with every extra step, and a
/// logical form's instantiation cost is roughly linear in its operator
/// count (every `op { ... }` brace pair is evaluated once while siblings
/// instantiate and once more when the claim is finished). The defaults keep
/// the synthetic corpus inside the bench gate's regression tolerance while
/// the heavy shapes stay covered by the builtin templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBudget {
    /// Maximum comparison atoms in a SQL WHERE tree.
    pub sql_max_where_atoms: usize,
    /// Maximum steps in an arithmetic program.
    pub arith_max_steps: usize,
    /// Maximum operator applications in a logical form.
    pub logic_max_ops: usize,
}

impl Default for CostBudget {
    fn default() -> CostBudget {
        CostBudget { sql_max_where_atoms: 1, arith_max_steps: 2, logic_max_ops: 2 }
    }
}

impl CostBudget {
    /// No caps: every well-typed shape is admitted regardless of cost.
    pub fn unbounded() -> CostBudget {
        CostBudget {
            sql_max_where_atoms: usize::MAX,
            arith_max_steps: usize::MAX,
            logic_max_ops: usize::MAX,
        }
    }
}

/// Comparison atoms in a WHERE condition tree.
fn sql_where_atoms(cond: &sqlexec::Cond) -> usize {
    match cond {
        sqlexec::Cond::Compare { .. } => 1,
        sqlexec::Cond::And(a, b) | sqlexec::Cond::Or(a, b) => {
            sql_where_atoms(a) + sql_where_atoms(b)
        }
    }
}

/// Operator applications in a logical form (its `{`-brace count).
fn logic_ops(expr: &logicforms::LfExpr) -> usize {
    match expr {
        logicforms::LfExpr::Apply(_, args) => 1 + args.iter().map(logic_ops).sum::<usize>(),
        _ => 0,
    }
}

/// One canonical-equivalence pruning the miner performed: the turned-away
/// template and the index (into the miner's bank) of the surviving class
/// representative. Every record must pass the differential witness
/// (`crate::analysis::verify_merge`) — `xtask audit-equivalence` gates on
/// zero unverified merges.
#[derive(Debug, Clone)]
pub struct MergeRecord {
    pub kind: KindSlot,
    /// The pruned template (novel signature, equivalent canonical form).
    pub pruned: AnyTemplate,
    /// Bank index of the admitted representative it merged into.
    pub representative: usize,
}

/// Drives concrete programs through parse → abstract → typecheck → dedup
/// into a [`TemplateBank`].
#[derive(Debug, Default)]
pub struct Miner {
    bank: TemplateBank,
    stats: MinerStats,
    budget: CostBudget,
    merges: Vec<MergeRecord>,
}

impl Miner {
    /// A miner over an empty bank: the mined corpus stands alone and dedups
    /// only against itself.
    pub fn new() -> Miner {
        Miner::default()
    }

    /// A miner extending an existing bank (e.g. the builtin one): mined
    /// templates dedup against everything already present.
    pub fn with_bank(bank: TemplateBank) -> Miner {
        Miner { bank, ..Miner::default() }
    }

    /// Replaces the cost budget (defaults to [`CostBudget::default`]).
    pub fn with_budget(mut self, budget: CostBudget) -> Miner {
        self.budget = budget;
        self
    }

    /// Mines one concrete program of `kind` from its surface text. `table`
    /// supplies the schema that types the lifted column holes (only SQL
    /// abstraction consults it).
    pub fn mine_program(&mut self, kind: KindSlot, text: &str, table: &Table) -> MineOutcome {
        let abstracted = match kind {
            KindSlot::Sql => match sqlexec::parse(text) {
                Ok(stmt) => {
                    let atoms = stmt.where_clause.as_ref().map_or(0, sql_where_atoms);
                    if atoms > self.budget.sql_max_where_atoms {
                        self.stats.bump(kind, MineOutcome::OverBudget);
                        return MineOutcome::OverBudget;
                    }
                    AnyTemplate::Sql(sqlexec::abstract_query(&stmt, table))
                }
                Err(_) => {
                    self.stats.bump(kind, MineOutcome::ParseFailed);
                    return MineOutcome::ParseFailed;
                }
            },
            KindSlot::Logic => match logicforms::parse(text) {
                Ok(expr) => {
                    if logic_ops(&expr) > self.budget.logic_max_ops {
                        self.stats.bump(kind, MineOutcome::OverBudget);
                        return MineOutcome::OverBudget;
                    }
                    AnyTemplate::Logic(logicforms::abstract_form(&expr))
                }
                Err(_) => {
                    self.stats.bump(kind, MineOutcome::ParseFailed);
                    return MineOutcome::ParseFailed;
                }
            },
            KindSlot::Arith => match arithexpr::parse(text) {
                Ok(program) => {
                    if program.steps.len() > self.budget.arith_max_steps {
                        self.stats.bump(kind, MineOutcome::OverBudget);
                        return MineOutcome::OverBudget;
                    }
                    AnyTemplate::Arith(arithexpr::abstract_program(&program))
                }
                Err(_) => {
                    self.stats.bump(kind, MineOutcome::ParseFailed);
                    return MineOutcome::ParseFailed;
                }
            },
            KindSlot::None => {
                self.stats.bump(kind, MineOutcome::NotAProgram);
                return MineOutcome::NotAProgram;
            }
        };
        // Abstract-interpretation gate: a well-typed template the A-rules
        // convict (constant output, decided claim, provably empty result)
        // would only ever mint useless samples. The check is pure — it
        // consumes no RNG — so mining stays deterministic per seed.
        {
            let analysis = abstracted.as_program().analyze();
            if analysis.issues.is_empty() && !analysis.degeneracies.is_empty() {
                self.stats.bump(kind, MineOutcome::Degenerate);
                return MineOutcome::Degenerate;
            }
        }
        let outcome = match self.bank.try_add_classified(abstracted.clone()) {
            Ok(crate::templates::AddOutcome::Added(_)) => MineOutcome::Mined,
            Ok(crate::templates::AddOutcome::DuplicateSignature) => MineOutcome::Duplicate,
            Ok(crate::templates::AddOutcome::EquivalentTo(rep)) => {
                self.merges.push(MergeRecord { kind, pruned: abstracted, representative: rep });
                MineOutcome::EquivalentTo(rep)
            }
            Err(_) => MineOutcome::Rejected,
        };
        self.stats.bump(kind, outcome);
        outcome
    }

    /// Mines the gold program a labeled sample carries (the `corpora`
    /// benchmark flow: every gold sample serializes the concrete program
    /// that produced its label).
    pub fn mine_sample(&mut self, sample: &Sample) -> MineOutcome {
        match &sample.program {
            ProgramKind::Sql(text) => self.mine_program(KindSlot::Sql, text, &sample.table),
            ProgramKind::Logic(text) => self.mine_program(KindSlot::Logic, text, &sample.table),
            ProgramKind::Arith(text) => self.mine_program(KindSlot::Arith, text, &sample.table),
            ProgramKind::None => {
                self.stats.bump(KindSlot::None, MineOutcome::NotAProgram);
                MineOutcome::NotAProgram
            }
        }
    }

    /// Mines every gold sample of a slice (convenience for benchmark sets).
    pub fn mine_samples(&mut self, samples: &[Sample]) -> usize {
        let before = self.stats.mined_total();
        for s in samples {
            self.mine_sample(s);
        }
        self.stats.mined_total() - before
    }

    /// Mines the deterministic synthetic seed corpus (see the module docs):
    /// the enumerated concrete SQL and arithmetic programs plus
    /// `LOGIC_TARGET` auto-generated concrete logical-form claims. Returns
    /// the number of templates admitted.
    pub fn mine_synthetic_corpus(&mut self, seed: u64) -> usize {
        let before = self.stats.mined_total();
        let sql_probe = sql_probe_table();
        let fin_probe = fin_probe_table();
        for text in sql_seed_programs() {
            self.mine_program(KindSlot::Sql, &text, &sql_probe);
        }
        for text in arith_seed_programs() {
            self.mine_program(KindSlot::Arith, &text, &fin_probe);
        }
        for text in logic_seed_programs() {
            self.mine_program(KindSlot::Logic, &text, &sql_probe);
        }
        self.mine_autogen_logic(&sql_probe, LOGIC_TARGET, seed);
        self.stats.mined_total() - before
    }

    /// The logic side of the synthetic corpus: fit [`AutoGenerator`] on the
    /// builtin logic stratum, instantiate each validated proposal on the
    /// probe table into *concrete* claims (one per truth target), and run
    /// those through the ordinary mining flow (parse → abstract → dedup) —
    /// the same path a real Logic2Text claim would take.
    fn mine_autogen_logic(&mut self, probe: &Table, target: usize, seed: u64) {
        let seed_bank = TemplateBank::builtin();
        let mut gen = AutoGenerator::fit(seed_bank.logic());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut existing = FxHashSet::default();
        for tpl in gen.generate(target, probe, &mut existing, &mut rng) {
            for desired in [true, false] {
                if let Some(claim) = tpl.instantiate(probe, &mut rng, desired) {
                    self.mine_program(KindSlot::Logic, &claim.expr.to_string(), probe);
                }
            }
        }
    }

    /// The bank accumulated so far.
    pub fn bank(&self) -> &TemplateBank {
        &self.bank
    }

    /// Consumes the miner, returning the accumulated bank.
    pub fn into_bank(self) -> TemplateBank {
        self.bank
    }

    /// The mining counters.
    pub fn stats(&self) -> MinerStats {
        self.stats
    }

    /// The canonical-equivalence prunings performed so far, in the order
    /// they happened. Deterministic per seed (the gate is pure).
    pub fn merges(&self) -> &[MergeRecord] {
        &self.merges
    }

    /// Renders the mined corpus in the `kind: template` line format the
    /// `xtask audit-templates --mined` gate parses, with a `#` header
    /// carrying the per-kind funnel counts. Deterministic: templates appear
    /// in bank insertion order.
    pub fn corpus_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# Mined template corpus ({} templates).", self.bank.len());
        for kind in [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith] {
            let k = self.stats.kind(kind);
            let _ = writeln!(
                out,
                "# {}: {} mined, {} duplicates filtered, {} equivalent pruned, {} rejected, \
                 {} degenerate, {} over budget, {} parse failures",
                kind.name(),
                k.mined,
                k.duplicates,
                k.equivalent,
                k.rejected,
                k.degenerate,
                k.over_budget,
                k.parse_failures
            );
        }
        for t in self.bank.templates() {
            let p = t.as_program();
            let _ = writeln!(out, "{}: {}", p.kind().name(), p.signature());
        }
        out
    }
}

/// How many auto-generated logic proposals the synthetic corpus instantiates
/// and re-mines. Deliberately above the shallow-shape capacity of the
/// grammar: the [`CostBudget`] turns away deep proposals, so overshooting
/// the target is how the miner exhausts the space of claims cheap enough
/// to admit.
pub const LOGIC_TARGET: usize = 800;

/// The default seed of the synthetic corpus (and of `xtask mine`).
pub const SYNTHETIC_SEED: u64 = 2023;

/// A 1k+-template bank: the builtin templates extended with the full
/// synthetic seed corpus (mined templates dedup against the builtins).
/// Deterministic per seed; this is the configuration `bench_pipeline`
/// measures as `mined_bank`.
pub fn mined_bank(seed: u64) -> TemplateBank {
    let mut miner = Miner::with_bank(TemplateBank::builtin());
    miner.mine_synthetic_corpus(seed);
    miner.into_bank()
}

/// SQUALL-style probe table: two text columns, two number columns, one date
/// column. Types the SQL holes and hosts the logic-claim instantiation.
pub fn sql_probe_table() -> Table {
    Table::from_strings(
        "clubs",
        &[
            vec!["name", "city", "points", "wins", "founded"],
            vec!["Reds", "Oslo", "77", "21", "1990-05-01"],
            vec!["Blues", "Lima", "64", "18", "1985-03-12"],
            vec!["Greens", "Kyiv", "81", "24", "2001-08-23"],
            vec!["Golds", "Quito", "59", "15", "1999-11-30"],
        ],
    )
    .unwrap_or_else(|e| panic!("sql probe table is well-formed: {e:?}"))
}

/// FinQA-style probe table: a text item column and per-year number columns,
/// addressed by the `the <col> of <row>` cell syntax.
pub fn fin_probe_table() -> Table {
    Table::from_strings(
        "financials",
        &[
            vec!["item", "2019", "2018", "2017"],
            vec!["Revenue", "8800", "8000", "7600"],
            vec!["Costs", "6100", "5900", "5700"],
            vec!["Equity", "3200", "4000", "3900"],
        ],
    )
    .unwrap_or_else(|e| panic!("fin probe table is well-formed: {e:?}"))
}

/// The enumerated concrete SQL seed corpus over [`sql_probe_table`]:
/// select-item shapes × where shapes × order/limit tails. Abstraction
/// collapses value choices, so each emitted query is one *shape*; the
/// bank's signature dedup drops the collisions that remain. Every shape
/// keeps its WHERE tree to a single atom — the [`CostBudget`] turns away
/// multi-atom trees, whose attempt cost would drag the whole bank below
/// the CI throughput gate, and the builtin templates already cover the
/// conjunctive shapes.
fn sql_seed_programs() -> Vec<String> {
    let selects = [
        "[name]",
        "[points]",
        "[founded]",
        "[name] , [points]",
        "[name] , [founded]",
        "[name] , [city]",
        "[points] , [wins]",
        "[founded] , [points]",
        "count ( * )",
        "count ( distinct [city] )",
        "count ( distinct [points] )",
        "count ( distinct [founded] )",
        "sum ( [points] )",
        "avg ( [points] )",
        "max ( [points] )",
        "min ( [points] )",
        "max ( [founded] )",
        "min ( [founded] )",
        "[points] - [wins]",
        "[points] + [wins]",
        "[points] * [wins]",
        "[points] / [wins]",
    ];
    let single_wheres = [
        "[city] = 'Oslo'",
        "[city] != 'Oslo'",
        "[points] = 77",
        "[points] != 77",
        "[points] > 70",
        "[points] < 70",
        "[points] >= 70",
        "[points] <= 70",
        "[founded] = '1995-01-01'",
        "[founded] != '1995-01-01'",
        "[founded] > '1995-01-01'",
        "[founded] < '1995-01-01'",
        "[founded] >= '1995-01-01'",
        "[founded] <= '1995-01-01'",
    ];
    let tails = [
        "",
        "order by [points] desc limit 1",
        "order by [points] asc limit 1",
        "order by [founded] desc limit 1",
        "order by [founded] asc limit 1",
    ];
    let extra_tails =
        ["order by [points] desc", "order by [name] asc limit 1", "limit 3", "limit 2"];

    let mut out = Vec::new();
    let mut push = |select: &str, where_: &str, tail: &str| {
        let mut q = format!("select {select} from w");
        if !where_.is_empty() {
            q.push_str(" where ");
            q.push_str(where_);
        }
        if !tail.is_empty() {
            q.push(' ');
            q.push_str(tail);
        }
        out.push(q);
    };
    for select in selects {
        for tail in tails {
            push(select, "", tail);
            for w in single_wheres {
                push(select, w, tail);
            }
        }
        for tail in extra_tails {
            push(select, "", tail);
        }
    }
    out
}

/// The enumerated concrete logical-form seed corpus over
/// [`sql_probe_table`]: every claim shape expressible within the default
/// [`CostBudget`]'s two-application cap — scalar comparators over
/// aggregations of the whole table, uniqueness claims over one filter, and
/// the `all_*`/`most_*` column-quantifier family, plain and over a
/// `filter_all` view. Deeper claim shapes (the classic
/// `eq { count { filter_eq { ... } } ; n }` of Logic2Text) stay with the
/// builtin templates and the autogen proposals feeding
/// [`Miner::mine_autogen_logic`].
fn logic_seed_programs() -> Vec<String> {
    let comparators = ["eq", "not_eq", "round_eq", "greater", "less"];
    let aggs = [
        "count { all_rows }".to_string(),
        "max { all_rows ; points }".to_string(),
        "min { all_rows ; points }".to_string(),
        "sum { all_rows ; points }".to_string(),
        "avg { all_rows ; points }".to_string(),
        "nth_max { all_rows ; points ; 2 }".to_string(),
        "nth_min { all_rows ; points ; 2 }".to_string(),
    ];
    let filters = [
        "filter_eq { all_rows ; city ; Oslo }",
        "filter_not_eq { all_rows ; city ; Oslo }",
        "filter_greater { all_rows ; points ; 70 }",
        "filter_less { all_rows ; points ; 70 }",
        "filter_greater_eq { all_rows ; points ; 70 }",
        "filter_less_eq { all_rows ; points ; 70 }",
        "filter_all { all_rows ; points }",
    ];
    let quantifiers = [
        "all_eq",
        "all_not_eq",
        "all_greater",
        "all_less",
        "all_greater_eq",
        "all_less_eq",
        "most_eq",
        "most_not_eq",
        "most_greater",
        "most_less",
        "most_greater_eq",
        "most_less_eq",
    ];

    let mut out = Vec::new();
    // Both argument orders: "the count is 70" and "70 is the count" are
    // distinct shapes after abstraction, and both verbalize fine.
    for cmp in comparators {
        for agg in &aggs {
            out.push(format!("{cmp} {{ {agg} ; 70 }}"));
            out.push(format!("{cmp} {{ 70 ; {agg} }}"));
        }
    }
    for filter in filters {
        out.push(format!("only {{ {filter} }}"));
    }
    for q in quantifiers {
        out.push(format!("{q} {{ all_rows ; points ; 70 }}"));
        out.push(format!("{q} {{ filter_all {{ all_rows ; wins }} ; points ; 70 }}"));
    }
    out
}

/// The enumerated concrete arithmetic seed corpus over
/// [`fin_probe_table`]: FinQA-style step programs of one or two steps —
/// the [`CostBudget`] caps chains at two, so three-step shapes stay with
/// the builtin templates. `greater` yields a truth value, so it only ever
/// terminates a chain. Constants survive abstraction, so each constant
/// choice is its own shape.
fn arith_seed_programs() -> Vec<String> {
    let c = |col: &str, row: &str| format!("the {col} of {row}");
    let cells =
        [c("2019", "Revenue"), c("2018", "Revenue"), c("2019", "Costs"), c("2018", "Costs")];
    let numeric_ops = ["add", "subtract", "multiply", "divide"];
    let final_ops = ["add", "subtract", "multiply", "divide", "greater", "exp"];
    let table_ops = ["table_sum", "table_average", "table_max", "table_min"];
    let cols = ["2019", "2018"];

    let mut out = Vec::new();
    // One step: binary over two cells; table op over a column; a cell
    // against a constant (both orders — growth rates, scalings, ratios).
    for op in final_ops {
        out.push(format!("{op}( {} , {} )", cells[0], cells[1]));
    }
    for op in table_ops {
        out.push(format!("{op}( {} )", cols[0]));
    }
    for op in final_ops {
        for konst in ["2", "100", "1000"] {
            out.push(format!("{op}( {} , {konst} )", cells[0]));
            out.push(format!("{op}( {konst} , {} )", cells[0]));
        }
    }
    // Two steps: a numeric opener, then a combiner over #0 and a third
    // operand (fresh cell or constant), in both operand orders.
    let mut openers: Vec<String> = Vec::new();
    for op in numeric_ops {
        openers.push(format!("{op}( {} , {} )", cells[0], cells[1]));
    }
    for op in table_ops {
        openers.push(format!("{op}( {} )", cols[0]));
    }
    for opener in &openers {
        for op in final_ops {
            for operand in [cells[2].as_str(), "2", "100", "1000"] {
                out.push(format!("{opener} , {op}( #0 , {operand} )"));
                out.push(format!("{opener} , {op}( {operand} , #0 )"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mine_program_covers_every_outcome() {
        let table = sql_probe_table();
        let mut miner = Miner::new();
        assert_eq!(
            miner.mine_program(KindSlot::Sql, "select [name] from w where [points] > 70", &table),
            MineOutcome::Mined
        );
        // Same shape, different literal: filtration dedups it.
        assert_eq!(
            miner.mine_program(KindSlot::Sql, "select [name] from w where [points] > 60", &table),
            MineOutcome::Duplicate
        );
        assert_eq!(
            miner.mine_program(KindSlot::Logic, "count { all_rows }", &table),
            MineOutcome::Rejected,
            "non-boolean-rooted claims are rejected by the analyzer"
        );
        assert_eq!(
            miner.mine_program(
                KindSlot::Sql,
                "select [name] from w where [points] > 70 and [wins] < 20",
                &table
            ),
            MineOutcome::OverBudget,
            "two WHERE atoms exceed the default cost budget"
        );
        assert_eq!(
            miner.mine_program(KindSlot::Sql, "select count ( from w", &table),
            MineOutcome::ParseFailed
        );
        assert_eq!(miner.mine_program(KindSlot::None, "", &table), MineOutcome::NotAProgram);
        let stats = miner.stats();
        assert_eq!(stats.kind(KindSlot::Sql).mined, 1);
        assert_eq!(stats.kind(KindSlot::Sql).duplicates, 1);
        assert_eq!(stats.kind(KindSlot::Sql).over_budget, 1);
        assert_eq!(stats.kind(KindSlot::Sql).parse_failures, 1);
        assert_eq!(stats.kind(KindSlot::Logic).rejected, 1);
        assert_eq!(stats.skipped, 1);
        assert_eq!(miner.bank().len(), 1);
    }

    #[test]
    fn cost_budget_caps_each_kind_and_can_be_lifted() {
        let sql_probe = sql_probe_table();
        let fin_probe = fin_probe_table();
        let three_step = "table_sum( 2019 ) , table_sum( 2018 ) , subtract( #0 , #1 )";
        let shallow_claim = "eq { count { all_rows } ; 4 }";
        let deep_claim = "eq { count { filter_eq { all_rows ; city ; Oslo } } ; 1 }";
        let mut capped = Miner::new();
        assert_eq!(
            capped.mine_program(KindSlot::Arith, three_step, &fin_probe),
            MineOutcome::OverBudget
        );
        assert_eq!(
            capped.mine_program(KindSlot::Logic, shallow_claim, &sql_probe),
            MineOutcome::Mined
        );
        assert_eq!(
            capped.mine_program(KindSlot::Logic, deep_claim, &sql_probe),
            MineOutcome::OverBudget,
            "three nested applications exceed the default logic cap of two"
        );
        let mut unbounded = Miner::new().with_budget(CostBudget::unbounded());
        assert_eq!(
            unbounded.mine_program(KindSlot::Arith, three_step, &fin_probe),
            MineOutcome::Mined
        );
        assert_eq!(unbounded.stats().kind(KindSlot::Arith).over_budget, 0);
    }

    #[test]
    fn mine_sample_routes_on_the_program_kind() {
        let table = fin_probe_table();
        let mut miner = Miner::new();
        let mut s = Sample::qa(table.clone(), "q", "1");
        s.program =
            ProgramKind::Arith("subtract( the 2019 of Revenue , the 2018 of Revenue )".into());
        assert_eq!(miner.mine_sample(&s), MineOutcome::Mined);
        s.program = ProgramKind::None;
        assert_eq!(miner.mine_sample(&s), MineOutcome::NotAProgram);
        assert_eq!(miner.mine_samples(&[s]), 0);
    }

    #[test]
    fn synthetic_corpus_yields_a_large_clean_deduped_bank() {
        let mut miner = Miner::new();
        let mined = miner.mine_synthetic_corpus(SYNTHETIC_SEED);
        let stats = miner.stats();
        assert!(
            mined >= 1000,
            "synthetic corpus must mine >= 1000 templates, got {mined} ({stats:?})"
        );
        for kind in [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith] {
            // The canonical-equivalence gate prunes the order-swapped
            // enumerations of the seed corpus (logic most of all: its seed
            // deliberately emits both comparator argument orders), so the
            // per-kind floor sits below the pre-pruning 100.
            assert!(stats.kind(kind).mined >= 60, "kind {kind:?} too thin: {:?}", stats.kind(kind));
        }
        // The logic and arithmetic seeds deliberately enumerate both
        // argument orders, so canonical pruning must fire there. The SQL
        // seeds keep columns on the left and enumerate one conjunct order,
        // so synthetic SQL has nothing to merge.
        for kind in [KindSlot::Logic, KindSlot::Arith] {
            assert!(
                stats.kind(kind).equivalent > 0,
                "kind {kind:?} should prune some canonical equivalents: {:?}",
                stats.kind(kind)
            );
        }
        assert_eq!(miner.bank().len(), mined);
        assert_eq!(
            miner.merges().len(),
            [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith]
                .iter()
                .map(|&k| stats.kind(k).equivalent)
                .sum::<usize>(),
            "every pruning leaves a merge record for the witness harness"
        );
        // Clean by construction: everything admitted passed the analyzer.
        for t in miner.bank().templates() {
            let analysis = t.as_program().analyze();
            assert!(analysis.issues.is_empty(), "mined template with issues: {t:?}");
        }
    }

    #[test]
    fn synthetic_corpus_is_deterministic() {
        let mut a = Miner::new();
        let mut b = Miner::new();
        a.mine_synthetic_corpus(SYNTHETIC_SEED);
        b.mine_synthetic_corpus(SYNTHETIC_SEED);
        assert_eq!(a.corpus_lines(), b.corpus_lines());
    }

    #[test]
    fn corpus_lines_round_trip_through_the_bank() {
        let mut miner = Miner::new();
        let table = sql_probe_table();
        miner.mine_program(KindSlot::Sql, "select [name] from w where [points] > 70", &table);
        miner.mine_program(KindSlot::Arith, "table_sum( 2019 )", &fin_probe_table());
        let lines = miner.corpus_lines();
        let mut bank = TemplateBank::new();
        for line in lines.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (kind, text) = line.split_once(':').unwrap_or_else(|| panic!("bad line {line}"));
            let kind = match kind.trim() {
                "sql" => KindSlot::Sql,
                "logic" => KindSlot::Logic,
                "arith" => KindSlot::Arith,
                other => panic!("unexpected kind {other}"),
            };
            assert_eq!(bank.try_add_source(kind, text.trim()), Ok(true), "line: {line}");
        }
        assert_eq!(bank.len(), miner.bank().len());
    }

    #[test]
    fn mined_bank_extends_the_builtins() {
        let bank = mined_bank(SYNTHETIC_SEED);
        assert!(bank.len() > TemplateBank::builtin().len());
        assert!(bank.len() >= 1000);
        // The schema index stays coherent at scale.
        assert!(bank.lattice_points().len() < bank.len());
        let ctx = tabular::ExecContext::new(&sql_probe_table());
        let feasible = bank.feasible_set(&ctx);
        let total: usize = [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith]
            .iter()
            .map(|&k| feasible.len(k))
            .sum();
        assert!(total > 0);
    }
}
