//! Pipeline telemetry: lock-free generation counters and the
//! [`PipelineReport`] they aggregate into.
//!
//! The generation path (see [`crate::pipeline`]) silently discards most of
//! the programs it attempts — templates that cannot bind to a table,
//! executions that return empty results (paper §IV-C), splits whose
//! highlighted rows cannot be verbalized. This module makes those discards
//! observable so that dataset composition (paper Table II) can be read off
//! live counters, and so CI can gate on the pipeline's acceptance rate.
//!
//! Design constraints:
//!
//! * **Cheap on the hot path.** All counters are `AtomicU64` bumped with
//!   `Ordering::Relaxed` — no locks, no hashing per event. In
//!   [`crate::pipeline::UctrPipeline::generate_parallel`] every worker owns
//!   its own [`TelemetryBank`], and banks are [`TelemetryBank::merge`]d
//!   after the workers are joined, so parallel generation never contends on
//!   a shared cache line.
//! * **Deterministic counters.** Every counter is a pure function of the
//!   seeded generation stream, so for a fixed seed the counter totals are
//!   identical across 1/2/8-thread runs (asserted by the telemetry tests).
//!   Wall-clock histograms and the parallel scheduler's per-worker claim
//!   counters are the two exceptions: they live in the `timings` and
//!   `workers` sections of the report and are excluded from
//!   [`PipelineReport::deterministic_eq`].

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use crate::sample::ProgramKind;

/// Program kinds tracked by the per-kind counter grids. `None` covers the
/// programless text-only lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KindSlot {
    Sql = 0,
    Logic = 1,
    Arith = 2,
    None = 3,
}

pub const N_KINDS: usize = 4;

pub const KIND_NAMES: [&str; N_KINDS] = ["sql", "logic", "arith", "none"];

impl KindSlot {
    pub const ALL: [KindSlot; N_KINDS] =
        [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith, KindSlot::None];

    pub fn name(self) -> &'static str {
        KIND_NAMES[self as usize]
    }

    /// The slot a concrete sample's program falls into.
    pub fn of(kind: &ProgramKind) -> KindSlot {
        match kind {
            ProgramKind::Sql(_) => KindSlot::Sql,
            ProgramKind::Logic(_) => KindSlot::Logic,
            ProgramKind::Arith(_) => KindSlot::Arith,
            ProgramKind::None => KindSlot::None,
        }
    }
}

/// Funnel stages of one program attempt. `Accepted` is recorded at the
/// moment a sample is pushed, so per-kind accepted counts always partition
/// `samples.len()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Attempted = 0,
    Instantiated = 1,
    Executed = 2,
    Accepted = 3,
}

pub const N_STAGES: usize = 4;

/// Structured discard reasons, unified across the three executor crates'
/// instantiation errors plus the pipeline's own §IV-C filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Discard {
    /// The template bank holds no template for the requested kind.
    NoTemplate = 0,
    /// No table column (or numeric cell tuple) satisfies the template.
    ColumnMismatch = 1,
    /// A bound column had no admissible value to sample.
    ValueMismatch = 2,
    /// The template itself is malformed (unbound hole, dangling reference).
    MalformedTemplate = 3,
    /// Truth-targeted sampling never reached the desired label.
    TruthUnreachable = 4,
    /// Program execution failed (type error, divide-by-zero, ...).
    ExecFailed = 5,
    /// Execution succeeded with an empty result (paper §IV-C: discarded).
    EmptyResult = 6,
    /// The result rendered to an empty answer string.
    EmptyAnswer = 7,
    /// The program succeeded but the sample was dropped by a source-level
    /// filter (table too small to split, no verbalizable highlighted row,
    /// expansion evidence untouched by the program).
    PostFilter = 8,
}

pub const N_REASONS: usize = 9;

pub const DISCARD_NAMES: [&str; N_REASONS] = [
    "no_template",
    "column_mismatch",
    "value_mismatch",
    "malformed_template",
    "truth_unreachable",
    "exec_failed",
    "empty_result",
    "empty_answer",
    "post_filter",
];

impl Discard {
    pub fn name(self) -> &'static str {
        DISCARD_NAMES[self as usize]
    }
}

impl From<sqlexec::SqlInstantiateError> for Discard {
    fn from(e: sqlexec::SqlInstantiateError) -> Discard {
        use sqlexec::SqlInstantiateError::*;
        match e {
            NoCompatibleColumn => Discard::ColumnMismatch,
            NoValueCandidates => Discard::ValueMismatch,
            MalformedTemplate => Discard::MalformedTemplate,
        }
    }
}

impl From<logicforms::LfInstantiateError> for Discard {
    fn from(e: logicforms::LfInstantiateError) -> Discard {
        use logicforms::LfInstantiateError::*;
        match e {
            EmptyTable | NoCompatibleColumn => Discard::ColumnMismatch,
            NoValueCandidates => Discard::ValueMismatch,
            MalformedTemplate => Discard::MalformedTemplate,
            ExecutionFailed => Discard::ExecFailed,
            DegenerateResult => Discard::EmptyResult,
            TruthUnreachable => Discard::TruthUnreachable,
        }
    }
}

impl From<arithexpr::AeInstantiateError> for Discard {
    fn from(e: arithexpr::AeInstantiateError) -> Discard {
        use arithexpr::AeInstantiateError::*;
        match e {
            NotEnoughNumericCells => Discard::ColumnMismatch,
            MalformedTemplate => Discard::MalformedTemplate,
            ExecutionFailed => Discard::ExecFailed,
        }
    }
}

impl From<sqlexec::ExecError> for Discard {
    fn from(_: sqlexec::ExecError) -> Discard {
        Discard::ExecFailed
    }
}

impl From<logicforms::LfError> for Discard {
    fn from(_: logicforms::LfError) -> Discard {
        Discard::ExecFailed
    }
}

impl From<arithexpr::AeError> for Discard {
    fn from(_: arithexpr::AeError) -> Discard {
        Discard::ExecFailed
    }
}

/// Data sources of the generation loop (rows of the paper's ablation grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    TableOnly = 0,
    TextOnly = 1,
    TableSplit = 2,
    TableExpand = 3,
}

pub const N_SOURCES: usize = 4;

pub const SOURCE_NAMES: [&str; N_SOURCES] =
    ["table_only", "text_only", "table_split", "table_expand"];

impl Source {
    pub fn name(self) -> &'static str {
        SOURCE_NAMES[self as usize]
    }
}

/// Instrumented phases of one attempt, each with its own wall-clock
/// histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timer {
    /// Template instantiation (for arithmetic templates this includes the
    /// internal execution, which the executor performs while sampling).
    Instantiate = 0,
    /// Program execution.
    Execute = 1,
    /// Natural-language generation (realization + reranking + noise).
    NlGen = 2,
    /// End-to-end latency of one serving request (queue wait + service),
    /// recorded by the [`crate::serve`] daemon. The batch entry points
    /// never touch this slot, so batch reports carry it with zero counts.
    Request = 3,
}

pub const N_TIMERS: usize = 4;

pub const TIMER_NAMES: [&str; N_TIMERS] = ["instantiate", "execute", "nl_gen", "request"];

/// Number of log2 latency buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` nanoseconds; the last bucket absorbs the tail (~4.3 s+).
pub const HIST_BUCKETS: usize = 32;

/// A coarse log2-bucketed latency histogram over `AtomicU64`s.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    #[inline]
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        // log2 bucket: 0ns and 1ns share bucket 0.
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.total_ns.fetch_add(ns, Relaxed);
    }

    fn merge(&self, other: &AtomicHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Relaxed), Relaxed);
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.total_ns.fetch_add(other.total_ns.load(Relaxed), Relaxed);
    }

    fn snapshot(&self, name: &str) -> TimingReport {
        TimingReport {
            name: name.to_string(),
            count: self.count.load(Relaxed),
            total_ns: self.total_ns.load(Relaxed),
            log2_ns_buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
        }
    }
}

/// The lock-free counter bank one generation run (or one worker of a
/// parallel run) writes into.
#[derive(Debug, Default)]
pub struct TelemetryBank {
    stages: [[AtomicU64; N_STAGES]; N_KINDS],
    /// Attempts skipped by the schema prefilter before instantiation: the
    /// chosen template's static [`tabular::SchemaRequirement`] proved the
    /// table infeasible. A funnel stage of its own, deliberately distinct
    /// from the runtime [`Discard`] reasons — prefiltered pairs never
    /// reached the instantiation sampler.
    prefiltered: [AtomicU64; N_KINDS],
    discards: [[AtomicU64; N_REASONS]; N_KINDS],
    source_attempted: [AtomicU64; N_SOURCES],
    source_accepted: [AtomicU64; N_SOURCES],
    inputs_total: AtomicU64,
    inputs_degenerate: AtomicU64,
    unknown_injected: AtomicU64,
    timers: [AtomicHistogram; N_TIMERS],
}

impl TelemetryBank {
    pub fn new() -> TelemetryBank {
        TelemetryBank::default()
    }

    #[inline]
    pub fn stage(&self, kind: KindSlot, stage: Stage) {
        self.stages[kind as usize][stage as usize].fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn discard(&self, kind: KindSlot, reason: Discard) {
        self.discards[kind as usize][reason as usize].fetch_add(1, Relaxed);
    }

    /// Records one attempt skipped by the schema prefilter.
    #[inline]
    pub fn prefilter(&self, kind: KindSlot) {
        self.prefiltered[kind as usize].fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn source_attempt(&self, source: Source) {
        self.source_attempted[source as usize].fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn source_accept(&self, source: Source) {
        self.source_accepted[source as usize].fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn input(&self, degenerate: bool) {
        self.inputs_total.fetch_add(1, Relaxed);
        if degenerate {
            self.inputs_degenerate.fetch_add(1, Relaxed);
        }
    }

    #[inline]
    pub fn unknown_injected(&self) {
        self.unknown_injected.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn time(&self, timer: Timer, d: Duration) {
        self.timers[timer as usize].record(d);
    }

    /// Runs `f` and records its wall-clock under `timer`.
    #[inline]
    pub fn timed<T>(&self, timer: Timer, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.time(timer, start.elapsed());
        out
    }

    /// Folds another bank (e.g. a parallel worker's) into this one.
    pub fn merge(&self, other: &TelemetryBank) {
        for (k, grid) in self.stages.iter().enumerate() {
            for (s, cell) in grid.iter().enumerate() {
                cell.fetch_add(other.stages[k][s].load(Relaxed), Relaxed);
            }
        }
        for (k, cell) in self.prefiltered.iter().enumerate() {
            cell.fetch_add(other.prefiltered[k].load(Relaxed), Relaxed);
        }
        for (k, grid) in self.discards.iter().enumerate() {
            for (r, cell) in grid.iter().enumerate() {
                cell.fetch_add(other.discards[k][r].load(Relaxed), Relaxed);
            }
        }
        for (i, cell) in self.source_attempted.iter().enumerate() {
            cell.fetch_add(other.source_attempted[i].load(Relaxed), Relaxed);
        }
        for (i, cell) in self.source_accepted.iter().enumerate() {
            cell.fetch_add(other.source_accepted[i].load(Relaxed), Relaxed);
        }
        self.inputs_total.fetch_add(other.inputs_total.load(Relaxed), Relaxed);
        self.inputs_degenerate.fetch_add(other.inputs_degenerate.load(Relaxed), Relaxed);
        self.unknown_injected.fetch_add(other.unknown_injected.load(Relaxed), Relaxed);
        for (mine, theirs) in self.timers.iter().zip(&other.timers) {
            mine.merge(theirs);
        }
    }

    /// Freezes the counters into a serializable report.
    pub fn report(&self, threads: usize) -> PipelineReport {
        let kinds = KindSlot::ALL
            .iter()
            .map(|&k| {
                let stage = |s: Stage| self.stages[k as usize][s as usize].load(Relaxed);
                KindReport {
                    kind: k.name().to_string(),
                    attempted: stage(Stage::Attempted),
                    prefiltered: self.prefiltered[k as usize].load(Relaxed),
                    instantiated: stage(Stage::Instantiated),
                    executed: stage(Stage::Executed),
                    accepted: stage(Stage::Accepted),
                    discards: (0..N_REASONS)
                        .filter_map(|r| {
                            let count = self.discards[k as usize][r].load(Relaxed);
                            (count > 0).then(|| DiscardReport {
                                reason: DISCARD_NAMES[r].to_string(),
                                count,
                            })
                        })
                        .collect(),
                }
            })
            .collect();
        let sources = (0..N_SOURCES)
            .map(|i| SourceReport {
                source: SOURCE_NAMES[i].to_string(),
                attempted: self.source_attempted[i].load(Relaxed),
                accepted: self.source_accepted[i].load(Relaxed),
            })
            .collect();
        let timings = (0..N_TIMERS).map(|i| self.timers[i].snapshot(TIMER_NAMES[i])).collect();
        PipelineReport {
            threads: threads as u64,
            inputs_total: self.inputs_total.load(Relaxed),
            inputs_degenerate: self.inputs_degenerate.load(Relaxed),
            unknown_injected: self.unknown_injected.load(Relaxed),
            kinds,
            sources,
            workers: Vec::new(),
            timings,
        }
    }
}

/// Per-program-kind funnel counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindReport {
    pub kind: String,
    pub attempted: u64,
    /// Attempts the schema prefilter skipped before instantiation (a
    /// funnel stage distinct from the runtime `discards`).
    pub prefiltered: u64,
    pub instantiated: u64,
    pub executed: u64,
    pub accepted: u64,
    pub discards: Vec<DiscardReport>,
}

/// One discard reason with its count (zero-count reasons are omitted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscardReport {
    pub reason: String,
    pub count: u64,
}

/// Per-data-source attempt/accept counts (paper Table II composition).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceReport {
    pub source: String,
    pub attempted: u64,
    pub accepted: u64,
}

/// Per-worker scheduling counters of one parallel run: how many chunked
/// claims the worker took off the shared work-queue cursor and how many
/// inputs those claims covered. Which worker processes which range is a
/// race by design (that is what makes the queue self-balancing), so this
/// section — like `timings` — is scheduling observability, excluded from
/// [`PipelineReport::deterministic_eq`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerReport {
    pub worker: u64,
    /// Contiguous input ranges claimed off the shared cursor.
    pub claims: u64,
    /// Inputs processed across all claims.
    pub inputs: u64,
}

/// One wall-clock histogram: log2-bucketed nanosecond latencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    /// `log2_ns_buckets[i]` counts durations in `[2^i, 2^(i+1))` ns.
    pub log2_ns_buckets: Vec<u64>,
}

impl TimingReport {
    /// An empty histogram (used as the merge identity).
    pub fn empty(name: &str) -> TimingReport {
        TimingReport {
            name: name.to_string(),
            count: 0,
            total_ns: 0,
            log2_ns_buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// Mean latency in nanoseconds (0 when nothing was recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another snapshot into this one (bucket-wise addition; `self`
    /// keeps its name). Merging is commutative and associative over the
    /// count/total/bucket fields, so shard snapshots can be combined in any
    /// grouping — the property the serving daemon's live stats rely on.
    pub fn merge(&mut self, other: &TimingReport) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        if self.log2_ns_buckets.len() < other.log2_ns_buckets.len() {
            self.log2_ns_buckets.resize(other.log2_ns_buckets.len(), 0);
        }
        for (mine, theirs) in self.log2_ns_buckets.iter_mut().zip(&other.log2_ns_buckets) {
            *mine += theirs;
        }
    }

    /// Estimated `q`-quantile latency in nanoseconds (`q` in `[0, 1]`),
    /// interpolated linearly inside the log2 bucket holding the rank-`⌈qN⌉`
    /// observation. The estimate is bounded by the bucket edges, so it is
    /// never off by more than one octave — adequate for a p99 gate over a
    /// log2 histogram. Returns 0 when nothing was recorded.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.log2_ns_buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            seen += b;
            if seen >= rank {
                // Bucket i spans [2^i, 2^(i+1)) ns, except bucket 0 which
                // also holds 0ns and 1ns durations.
                let lower = if i == 0 { 0u64 } else { 1u64 << i };
                let width = if i == 0 { 2u64 } else { 1u64 << i };
                let into = (b - (seen - rank)) as f64 / b as f64;
                return lower + (width as f64 * into) as u64;
            }
        }
        // Unreachable when the bucket sums equal `count`; fall back to the
        // mean rather than panicking on an inconsistent snapshot.
        self.mean_ns()
    }
}

/// A frozen snapshot of one generation run's telemetry, serializable to
/// JSON for the CI artifact and the bench binaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Worker count of the run (1 for the sequential path).
    pub threads: u64,
    pub inputs_total: u64,
    pub inputs_degenerate: u64,
    /// Verification samples relabeled `Unknown` by evidence swapping.
    pub unknown_injected: u64,
    pub kinds: Vec<KindReport>,
    pub sources: Vec<SourceReport>,
    /// Per-worker claim counters of the parallel scheduler (empty for the
    /// sequential path). Non-deterministic: claim assignment is a race.
    pub workers: Vec<WorkerReport>,
    /// Wall-clock histograms — non-deterministic like `workers`.
    pub timings: Vec<TimingReport>,
}

impl PipelineReport {
    /// Total program/sample attempts across all sources.
    pub fn attempted(&self) -> u64 {
        self.sources.iter().map(|s| s.attempted).sum()
    }

    /// Total accepted samples (equals the generated `Vec<Sample>` length).
    pub fn accepted(&self) -> u64 {
        self.kinds.iter().map(|k| k.accepted).sum()
    }

    /// Total attempts the schema prefilter skipped, summed over kinds.
    pub fn prefiltered(&self) -> u64 {
        self.kinds.iter().map(|k| k.prefiltered).sum()
    }

    /// Prefiltered / attempted program attempts (0 when nothing was
    /// attempted) — the hit rate the bench binaries report.
    pub fn prefilter_rate(&self) -> f64 {
        let attempted: u64 = self.kinds.iter().map(|k| k.attempted).sum();
        if attempted == 0 {
            0.0
        } else {
            self.prefiltered() as f64 / attempted as f64
        }
    }

    /// Accepted / attempted — the rate the CI floor gates on.
    pub fn acceptance_rate(&self) -> f64 {
        let attempted = self.attempted();
        if attempted == 0 {
            0.0
        } else {
            self.accepted() as f64 / attempted as f64
        }
    }

    /// Accepted counts keyed by program-kind name (`sql` / `logic` /
    /// `arith` / `none`).
    pub fn accepted_by_kind(&self) -> FxHashMap<&str, u64> {
        self.kinds.iter().map(|k| (k.kind.as_str(), k.accepted)).collect()
    }

    /// Accepted counts keyed by source name (the live Table II composition).
    pub fn accepted_by_source(&self) -> FxHashMap<&str, u64> {
        self.sources.iter().map(|s| (s.source.as_str(), s.accepted)).collect()
    }

    /// Total discards keyed by reason name, summed over kinds.
    pub fn discards_by_reason(&self) -> FxHashMap<&str, u64> {
        let mut out: FxHashMap<&str, u64> = FxHashMap::default();
        for k in &self.kinds {
            for d in &k.discards {
                *out.entry(d.reason.as_str()).or_insert(0) += d.count;
            }
        }
        out
    }

    /// The named wall-clock histogram, if the run recorded one (e.g.
    /// `"request"` for the serving daemon's end-to-end latency).
    pub fn timing(&self, name: &str) -> Option<&TimingReport> {
        self.timings.iter().find(|t| t.name == name)
    }

    /// Equality over the deterministic sections — everything except
    /// `threads`, the scheduler's `workers` section, and the wall-clock
    /// `timings`. Two runs of the same seed must be `deterministic_eq`
    /// regardless of thread count.
    pub fn deterministic_eq(&self, other: &PipelineReport) -> bool {
        self.inputs_total == other.inputs_total
            && self.inputs_degenerate == other.inputs_degenerate
            && self.unknown_injected == other.unknown_injected
            && self.kinds == other.kinds
            && self.sources == other.sources
    }

    pub fn to_json(&self) -> String {
        // Serialization of the plain-data report cannot fail; an empty
        // string is a safe (and greppable) degenerate output.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    pub fn from_json(text: &str) -> Result<PipelineReport, serde::Error> {
        serde_json::from_str(text)
    }

    /// A compact human-readable funnel summary for terminal output.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "inputs: {} ({} degenerate)  attempts: {}  accepted: {}  rate: {:.1}%",
            self.inputs_total,
            self.inputs_degenerate,
            self.attempted(),
            self.accepted(),
            100.0 * self.acceptance_rate()
        );
        for k in self.kinds.iter().filter(|k| k.attempted > 0) {
            let discarded: u64 = k.discards.iter().map(|d| d.count).sum();
            let _ = writeln!(
                s,
                "  {:<6} attempted {:>6}  prefiltered {:>6}  instantiated {:>6}  executed {:>6}  accepted {:>6}  discarded {:>6}",
                k.kind, k.attempted, k.prefiltered, k.instantiated, k.executed, k.accepted, discarded
            );
        }
        for src in self.sources.iter().filter(|src| src.attempted > 0) {
            let _ = writeln!(
                s,
                "  {:<12} attempted {:>6}  accepted {:>6}",
                src.source, src.attempted, src.accepted
            );
        }
        for t in self.timings.iter().filter(|t| t.count > 0) {
            let _ =
                writeln!(s, "  {:<12} {:>8} calls  mean {:>8} ns", t.name, t.count, t.mean_ns());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_discard_counts_round_trip_through_report() {
        let bank = TelemetryBank::new();
        bank.input(false);
        bank.stage(KindSlot::Sql, Stage::Attempted);
        bank.stage(KindSlot::Sql, Stage::Instantiated);
        bank.discard(KindSlot::Sql, Discard::EmptyResult);
        bank.stage(KindSlot::Arith, Stage::Attempted);
        bank.stage(KindSlot::Arith, Stage::Accepted);
        bank.source_attempt(Source::TableOnly);
        bank.source_accept(Source::TableOnly);
        let report = bank.report(1);
        assert_eq!(report.inputs_total, 1);
        assert_eq!(report.accepted(), 1);
        assert_eq!(report.accepted_by_kind()["arith"], 1);
        assert_eq!(report.discards_by_reason()["empty_result"], 1);
        assert_eq!(report.attempted(), 1);
    }

    #[test]
    fn merge_adds_counters() {
        let a = TelemetryBank::new();
        let b = TelemetryBank::new();
        a.stage(KindSlot::Logic, Stage::Attempted);
        b.stage(KindSlot::Logic, Stage::Attempted);
        b.discard(KindSlot::Logic, Discard::TruthUnreachable);
        b.time(Timer::Execute, Duration::from_micros(3));
        a.merge(&b);
        let report = a.report(2);
        let logic = report
            .kinds
            .iter()
            .find(|k| k.kind == "logic")
            .unwrap_or_else(|| panic!("report always carries a logic row"));
        assert_eq!(logic.attempted, 2);
        assert_eq!(logic.discards[0].reason, "truth_unreachable");
        assert_eq!(report.timings[Timer::Execute as usize].count, 1);
    }

    #[test]
    fn prefilter_counts_round_trip_and_merge() {
        let a = TelemetryBank::new();
        let b = TelemetryBank::new();
        a.stage(KindSlot::Sql, Stage::Attempted);
        a.prefilter(KindSlot::Sql);
        b.stage(KindSlot::Sql, Stage::Attempted);
        b.prefilter(KindSlot::Sql);
        b.stage(KindSlot::Arith, Stage::Attempted);
        b.stage(KindSlot::Arith, Stage::Instantiated);
        a.merge(&b);
        let report = a.report(2);
        assert_eq!(report.prefiltered(), 2);
        let sql = report
            .kinds
            .iter()
            .find(|k| k.kind == "sql")
            .unwrap_or_else(|| panic!("report always carries a sql row"));
        assert_eq!(sql.prefiltered, 2);
        assert_eq!(sql.attempted, 2);
        assert!(sql.discards.is_empty(), "prefilter is not a discard reason");
        assert!((report.prefilter_rate() - 2.0 / 3.0).abs() < 1e-12, "2 prefiltered / 3 attempted");
        // Prefilter counts are deterministic state: they participate in
        // deterministic_eq via the kind rows.
        let fresh = TelemetryBank::new().report(1);
        assert!(!report.deterministic_eq(&fresh));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = AtomicHistogram::default();
        h.record(Duration::from_nanos(1)); // bucket 0
        h.record(Duration::from_nanos(2)); // bucket 1
        h.record(Duration::from_nanos(1023)); // bucket 9
        h.record(Duration::from_nanos(1024)); // bucket 10
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 4);
        assert_eq!(snap.log2_ns_buckets[0], 1);
        assert_eq!(snap.log2_ns_buckets[1], 1);
        assert_eq!(snap.log2_ns_buckets[9], 1);
        assert_eq!(snap.log2_ns_buckets[10], 1);
    }

    /// A synthetic snapshot with the given per-bucket counts (total_ns set
    /// so mean and totals stay consistent with the bucket lower edges).
    fn timing(name: &str, buckets: &[(usize, u64)]) -> TimingReport {
        let mut t = TimingReport::empty(name);
        for &(i, n) in buckets {
            t.log2_ns_buckets[i] += n;
            t.count += n;
            t.total_ns += n * (1u64 << i);
        }
        t
    }

    #[test]
    fn timing_merge_is_associative_and_commutative() {
        let a = timing("request", &[(3, 5), (10, 2)]);
        let b = timing("request", &[(3, 1), (14, 7)]);
        let c = timing("request", &[(0, 4), (31, 1)]);
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        // b + a == a + b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count, ba.count);
        assert_eq!(ab.total_ns, ba.total_ns);
        assert_eq!(ab.log2_ns_buckets, ba.log2_ns_buckets);
        // Identity: merging an empty histogram is a no-op.
        let mut id = a.clone();
        id.merge(&TimingReport::empty("request"));
        assert_eq!(id, a);
    }

    #[test]
    fn timing_merge_handles_shorter_buckets() {
        let mut short = TimingReport {
            name: "request".into(),
            count: 1,
            total_ns: 8,
            log2_ns_buckets: vec![0, 0, 0, 1],
        };
        let long = timing("request", &[(10, 2)]);
        short.merge(&long);
        assert_eq!(short.count, 3);
        assert_eq!(short.log2_ns_buckets.len(), HIST_BUCKETS);
        assert_eq!(short.log2_ns_buckets[3], 1);
        assert_eq!(short.log2_ns_buckets[10], 2);
    }

    #[test]
    fn quantiles_walk_the_buckets_monotonically() {
        // 90 fast (bucket 3: 8-16ns), 9 medium (bucket 10: ~1µs), 1 slow
        // (bucket 20: ~1ms): p50 must land in the fast bucket, p99 in the
        // medium one, p999+ in the slow one.
        let t = timing("request", &[(3, 90), (10, 9), (20, 1)]);
        let p50 = t.quantile_ns(0.50);
        let p99 = t.quantile_ns(0.99);
        let p999 = t.quantile_ns(0.999);
        assert!((8..16).contains(&p50), "p50 = {p50}");
        assert!((1024..=2048).contains(&p99), "p99 = {p99}");
        assert!((1 << 20..=1 << 21).contains(&p999), "p999 = {p999}");
        assert!(p50 <= p99 && p99 <= p999, "quantiles must be monotone");
        // Degenerate cases.
        assert_eq!(TimingReport::empty("t").quantile_ns(0.99), 0);
        let one = timing("t", &[(5, 1)]);
        assert_eq!(one.quantile_ns(0.0), one.quantile_ns(1.0));
    }

    #[test]
    fn bank_records_request_timer_and_report_finds_it() {
        let bank = TelemetryBank::new();
        bank.time(Timer::Request, Duration::from_micros(100));
        bank.time(Timer::Request, Duration::from_micros(200));
        let report = bank.report(1);
        let req = report.timing("request").unwrap_or_else(|| panic!("request histogram missing"));
        assert_eq!(req.count, 2);
        assert!(req.mean_ns() > 0);
        assert!(report.timing("no_such_timer").is_none());
        // Request latency is live state, not deterministic content.
        assert!(report.deterministic_eq(&TelemetryBank::new().report(1)));
    }

    #[test]
    fn report_json_round_trip() {
        let bank = TelemetryBank::new();
        bank.input(true);
        bank.stage(KindSlot::Sql, Stage::Attempted);
        bank.discard(KindSlot::Sql, Discard::ColumnMismatch);
        bank.time(Timer::NlGen, Duration::from_micros(42));
        let report = bank.report(8);
        let json = report.to_json();
        let back = PipelineReport::from_json(&json)
            .unwrap_or_else(|e| panic!("report json round-trip: {e:?}"));
        assert_eq!(report, back);
        assert!(report.deterministic_eq(&back));
    }

    #[test]
    fn deterministic_eq_ignores_timings() {
        let a = TelemetryBank::new();
        let b = TelemetryBank::new();
        a.stage(KindSlot::Sql, Stage::Attempted);
        b.stage(KindSlot::Sql, Stage::Attempted);
        a.time(Timer::Execute, Duration::from_nanos(10));
        b.time(Timer::Execute, Duration::from_millis(10));
        assert!(a.report(1).deterministic_eq(&b.report(8)));
    }

    #[test]
    fn executor_errors_map_to_discard_reasons() {
        assert_eq!(
            Discard::from(sqlexec::SqlInstantiateError::NoCompatibleColumn),
            Discard::ColumnMismatch
        );
        assert_eq!(
            Discard::from(logicforms::LfInstantiateError::TruthUnreachable),
            Discard::TruthUnreachable
        );
        assert_eq!(
            Discard::from(arithexpr::AeInstantiateError::ExecutionFailed),
            Discard::ExecFailed
        );
    }

    #[test]
    fn acceptance_rate_bounds() {
        let bank = TelemetryBank::new();
        assert_eq!(bank.report(1).acceptance_rate(), 0.0);
        for _ in 0..4 {
            bank.source_attempt(Source::TableOnly);
        }
        bank.source_accept(Source::TableOnly);
        bank.stage(KindSlot::Sql, Stage::Accepted);
        let r = bank.report(1);
        assert!((r.acceptance_rate() - 0.25).abs() < 1e-12);
    }
}
