//! Reasoning-sample data model.
//!
//! A [`Sample`] is one training/evaluation instance of a tabular reasoning
//! task: evidence (table and/or context sentences), a natural-language
//! question or claim, and a gold label (an answer string or a verdict).
//! Both the synthetic data UCTR generates and the gold benchmark data from
//! the corpora crate use this type, so models train and evaluate on one
//! representation.

use serde::{Deserialize, Serialize};
use std::fmt;
use tabular::SharedTable;

/// Fact-verification verdicts (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    Supported,
    Refuted,
    /// Not enough information (FEVEROUS "NEI" / SEM-TAB-FACTS "Unknown").
    Unknown,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Supported => "Supported",
            Verdict::Refuted => "Refuted",
            Verdict::Unknown => "Unknown",
        };
        f.write_str(s)
    }
}

/// Gold output of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Label {
    /// Fact verification.
    Verdict(Verdict),
    /// Question answering (normalized answer text).
    Answer(String),
}

impl Label {
    pub fn as_verdict(&self) -> Option<Verdict> {
        match self {
            Label::Verdict(v) => Some(*v),
            Label::Answer(_) => None,
        }
    }

    pub fn as_answer(&self) -> Option<&str> {
        match self {
            Label::Answer(a) => Some(a),
            Label::Verdict(_) => None,
        }
    }
}

/// Which evidence the sample's reasoning needs (paper Table III splits
/// TAT-QA results by this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvidenceType {
    TableOnly,
    TextOnly,
    TableText,
}

impl fmt::Display for EvidenceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EvidenceType::TableOnly => "Table",
            EvidenceType::TextOnly => "Text",
            EvidenceType::TableText => "Table-Text",
        };
        f.write_str(s)
    }
}

/// The program that generated a synthetic sample (kept for analysis and the
/// Table IX reproduction). Gold samples carry `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProgramKind {
    Sql(String),
    Logic(String),
    Arith(String),
    None,
}

impl ProgramKind {
    pub fn type_name(&self) -> &'static str {
        match self {
            ProgramKind::Sql(_) => "sql",
            ProgramKind::Logic(_) => "logic",
            ProgramKind::Arith(_) => "arith",
            ProgramKind::None => "none",
        }
    }

    /// The serialized program, regardless of kind (`None` for programless
    /// text-only samples).
    pub fn program_text(&self) -> Option<&str> {
        match self {
            ProgramKind::Sql(p) | ProgramKind::Logic(p) | ProgramKind::Arith(p) => Some(p),
            ProgramKind::None => None,
        }
    }
}

/// TAT-QA-style answer kinds, used for per-type metric breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnswerKind {
    /// Span(s) copied from the evidence.
    Span,
    /// Counting questions.
    Count,
    /// Arithmetic computation.
    Arithmetic,
    /// Verdict tasks.
    NotApplicable,
}

/// One reasoning instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Table evidence (possibly a sub-table after splitting). Shared:
    /// cloning a sample (or fanning one table out over many samples) bumps
    /// a reference count instead of deep-copying the grid.
    pub table: SharedTable,
    /// Context sentences (surrounding text and/or generated sentences).
    pub context: Vec<String>,
    /// The question or claim.
    pub text: String,
    /// Gold label.
    pub label: Label,
    /// Evidence needed.
    pub evidence: EvidenceType,
    /// Originating program (synthetic samples only).
    pub program: ProgramKind,
    /// Answer kind for QA breakdowns.
    pub answer_kind: AnswerKind,
    /// Topic tag (used by the Figure 1 topic-shift experiment).
    pub topic: String,
}

impl Sample {
    /// A QA sample over a table only.
    pub fn qa(
        table: impl Into<SharedTable>,
        text: impl Into<String>,
        answer: impl Into<String>,
    ) -> Sample {
        Sample {
            table: table.into(),
            context: Vec::new(),
            text: text.into(),
            label: Label::Answer(answer.into()),
            evidence: EvidenceType::TableOnly,
            program: ProgramKind::None,
            answer_kind: AnswerKind::Span,
            topic: String::new(),
        }
    }

    /// A verification sample over a table only.
    pub fn verification(
        table: impl Into<SharedTable>,
        claim: impl Into<String>,
        verdict: Verdict,
    ) -> Sample {
        Sample {
            table: table.into(),
            context: Vec::new(),
            text: claim.into(),
            label: Label::Verdict(verdict),
            evidence: EvidenceType::TableOnly,
            program: ProgramKind::None,
            answer_kind: AnswerKind::NotApplicable,
            topic: String::new(),
        }
    }

    /// Full evidence text (context joined), for text-side feature
    /// extraction.
    pub fn context_text(&self) -> String {
        self.context.join(" ")
    }
}

/// A named collection of samples with train/dev/test splits.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    pub name: String,
    pub train: Vec<Sample>,
    pub dev: Vec<Sample>,
    pub test: Vec<Sample>,
}

impl Dataset {
    pub fn new(name: impl Into<String>) -> Dataset {
        Dataset { name: name.into(), ..Default::default() }
    }

    pub fn len(&self) -> usize {
        self.train.len() + self.dev.len() + self.test.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the dataset to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes a dataset from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Dataset> {
        serde_json::from_str(json)
    }

    /// Writes the dataset to a JSON file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a dataset from a JSON file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Dataset> {
        let json = std::fs::read_to_string(path)?;
        Dataset::from_json(&json).map_err(std::io::Error::other)
    }

    /// Counts samples per evidence type across all splits.
    pub fn evidence_counts(&self) -> [(EvidenceType, usize); 3] {
        let mut table_only = 0;
        let mut text_only = 0;
        let mut both = 0;
        for s in self.train.iter().chain(&self.dev).chain(&self.test) {
            match s.evidence {
                EvidenceType::TableOnly => table_only += 1,
                EvidenceType::TextOnly => text_only += 1,
                EvidenceType::TableText => both += 1,
            }
        }
        [
            (EvidenceType::TableOnly, table_only),
            (EvidenceType::TextOnly, text_only),
            (EvidenceType::TableText, both),
        ]
    }

    /// Counts verdicts across all splits (verification datasets).
    pub fn verdict_counts(&self) -> [(Verdict, usize); 3] {
        let mut sup = 0;
        let mut refuted = 0;
        let mut unk = 0;
        for s in self.train.iter().chain(&self.dev).chain(&self.test) {
            match s.label.as_verdict() {
                Some(Verdict::Supported) => sup += 1,
                Some(Verdict::Refuted) => refuted += 1,
                Some(Verdict::Unknown) => unk += 1,
                None => {}
            }
        }
        [(Verdict::Supported, sup), (Verdict::Refuted, refuted), (Verdict::Unknown, unk)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::Table;

    fn t() -> Table {
        Table::from_strings("t", &[vec!["a", "b"], vec!["x", "1"]])
            .unwrap_or_else(|e| panic!("test table: {e:?}"))
    }

    #[test]
    fn constructors() {
        let qa = Sample::qa(t(), "what is b when a is x?", "1");
        assert_eq!(qa.label.as_answer(), Some("1"));
        assert_eq!(qa.evidence, EvidenceType::TableOnly);
        let ver = Sample::verification(t(), "a is x.", Verdict::Supported);
        assert_eq!(ver.label.as_verdict(), Some(Verdict::Supported));
    }

    #[test]
    fn dataset_counts() {
        let mut d = Dataset::new("toy");
        d.train.push(Sample::verification(t(), "c1", Verdict::Supported));
        d.train.push(Sample::verification(t(), "c2", Verdict::Refuted));
        let mut s = Sample::verification(t(), "c3", Verdict::Supported);
        s.evidence = EvidenceType::TableText;
        d.dev.push(s);
        assert_eq!(d.len(), 3);
        let v = d.verdict_counts();
        assert_eq!(v[0].1, 2);
        assert_eq!(v[1].1, 1);
        let e = d.evidence_counts();
        assert_eq!(e[0].1, 2);
        assert_eq!(e[2].1, 1);
    }

    #[test]
    fn serde_roundtrip() {
        let s = Sample::qa(t(), "q?", "a");
        let json = serde_json::to_string(&s).unwrap_or_else(|e| panic!("serialize: {e}"));
        let back: Sample =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("deserialize: {e}"));
        assert_eq!(back.text, "q?");
        assert_eq!(back.label, Label::Answer("a".into()));
    }

    #[test]
    fn dataset_json_roundtrip() {
        let mut d = Dataset::new("toy");
        d.train.push(Sample::qa(t(), "q1?", "1"));
        d.dev.push(Sample::verification(t(), "c1.", Verdict::Refuted));
        let json = d.to_json().unwrap_or_else(|e| panic!("to_json: {e}"));
        let back = Dataset::from_json(&json).unwrap_or_else(|e| panic!("from_json: {e}"));
        assert_eq!(back.name, "toy");
        assert_eq!(back.train.len(), 1);
        assert_eq!(back.dev[0].label.as_verdict(), Some(Verdict::Refuted));
    }

    #[test]
    fn dataset_file_roundtrip() {
        let mut d = Dataset::new("disk");
        d.test.push(Sample::qa(t(), "q?", "a"));
        let path = std::env::temp_dir().join("uctr_dataset_roundtrip_test.json");
        d.save(&path).unwrap_or_else(|e| panic!("save: {e}"));
        let back = Dataset::load(&path).unwrap_or_else(|e| panic!("load: {e}"));
        assert_eq!(back.test.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn context_text_joins() {
        let mut s = Sample::qa(t(), "q?", "a");
        s.context = vec!["First.".into(), "Second.".into()];
        assert_eq!(s.context_text(), "First. Second.");
    }

    #[test]
    fn program_text_exposes_source_for_every_kind() {
        assert_eq!(
            ProgramKind::Sql("select c1 from w".into()).program_text(),
            Some("select c1 from w")
        );
        assert_eq!(ProgramKind::Logic("eq { a ; b }".into()).program_text(), Some("eq { a ; b }"));
        assert_eq!(ProgramKind::Arith("add( 1 , 2 )".into()).program_text(), Some("add( 1 , 2 )"));
        assert_eq!(ProgramKind::None.program_text(), None);
    }
}
