//! Automatic program generation (the paper's stated future work, §VII:
//! "explore an auto program-generation method based on the existing data
//! distributions to make the framework more flexible").
//!
//! Instead of relying only on a fixed mined template bank, [`AutoGenerator`]
//! *learns* the distribution of a seed corpus of logical-form templates —
//! which operators appear, how often, and with what sub-structures — and
//! synthesizes novel templates by recombining operator subtrees under the
//! DSL's type discipline. Every synthesized template is validated by trial
//! instantiation on a probe table before it is admitted, so the enlarged
//! bank stays executable.
//!
//! The generator works over a typed grammar view of the logical-form DSL:
//!
//! ```text
//! Bool  := eq(Scalar, Scalar) | greater | less | and(Bool, Bool)
//!        | only(View) | majority(View, col, val)
//! Scalar := count(View) | max/min/sum/avg(View, col)
//!        | nth_max/nth_min(View, col, n) | hop(Row, col) | diff(Scalar, Scalar)
//! Row   := argmax/argmin(View, col) | nth_argmax/nth_argmin(View, col, n)
//! View  := all_rows | filter_*(View, col, val)
//! ```

use logicforms::{LfExpr, LfOp, LfTemplate};
use rand::seq::SliceRandom;
use rand::Rng;
use rustc_hash::FxHashMap;
use tabular::Table;

/// Learned operator statistics from a seed template corpus.
#[derive(Debug, Clone, Default)]
pub struct ProgramDistribution {
    /// Operator frequencies in the seed corpus.
    op_counts: FxHashMap<LfOp, usize>,
    /// Observed filter-chain depths (how many nested filters under a view).
    filter_depths: Vec<usize>,
    total_ops: usize,
}

impl ProgramDistribution {
    /// Fits the distribution on a corpus of templates (accepts anything
    /// yielding `&LfTemplate` — a slice, or
    /// [`crate::TemplateBank::logic`]'s borrowed view).
    pub fn fit<'a, I>(templates: I) -> ProgramDistribution
    where
        I: IntoIterator<Item = &'a LfTemplate>,
    {
        let mut dist = ProgramDistribution::default();
        for t in templates {
            t.expr().visit(&mut |node| {
                if let LfExpr::Apply(op, _) = node {
                    *dist.op_counts.entry(*op).or_insert(0) += 1;
                    dist.total_ops += 1;
                }
            });
            dist.filter_depths.push(filter_depth(t.expr()));
        }
        dist
    }

    /// Relative frequency of an operator (with add-one smoothing so unseen
    /// operators can still be proposed occasionally).
    pub fn weight(&self, op: LfOp) -> f64 {
        (self.op_counts.get(&op).copied().unwrap_or(0) as f64 + 1.0)
            / (self.total_ops as f64 + 40.0)
    }

    /// Samples one operator from a candidate list by learned weight.
    fn sample_op(&self, candidates: &[LfOp], rng: &mut impl Rng) -> LfOp {
        let weights: Vec<f64> = candidates.iter().map(|&op| self.weight(op)).collect();
        let total: f64 = weights.iter().sum();
        let mut roll = rng.gen_range(0.0..total);
        for (op, w) in candidates.iter().zip(&weights) {
            if roll < *w {
                return *op;
            }
            roll -= w;
        }
        // Unreachable for the non-empty candidate lists the callers
        // pass; a neutral root op keeps this total.
        candidates.last().copied().unwrap_or(LfOp::Eq)
    }

    /// Typical filter depth (samples from the observed distribution).
    fn sample_filter_depth(&self, rng: &mut impl Rng) -> usize {
        self.filter_depths.choose(rng).copied().unwrap_or(1).min(2)
    }
}

fn filter_depth(e: &LfExpr) -> usize {
    match e {
        LfExpr::Apply(op, args) if is_filter(*op) => 1 + filter_depth(&args[0]),
        LfExpr::Apply(_, args) => args.iter().map(filter_depth).max().unwrap_or(0),
        _ => 0,
    }
}

fn is_filter(op: LfOp) -> bool {
    use LfOp::*;
    matches!(
        op,
        FilterEq | FilterNotEq | FilterGreater | FilterLess | FilterGreaterEq | FilterLessEq
    )
}

/// Auto program generator over the logical-form DSL.
pub struct AutoGenerator {
    dist: ProgramDistribution,
    /// Next free hole indexes during one synthesis.
    next_col: usize,
    next_val: usize,
}

impl AutoGenerator {
    /// Builds a generator whose proposal distribution follows the seed
    /// corpus (typically [`crate::TemplateBank::builtin`]'s logic side).
    pub fn fit<'a, I>(seed: I) -> AutoGenerator
    where
        I: IntoIterator<Item = &'a LfTemplate>,
    {
        AutoGenerator { dist: ProgramDistribution::fit(seed), next_col: 1, next_val: 1 }
    }

    /// Synthesizes one boolean-rooted template.
    pub fn propose(&mut self, rng: &mut impl Rng) -> LfTemplate {
        self.next_col = 1;
        self.next_val = 1;
        let expr = self.gen_bool(rng, 0);
        LfTemplate::from_expr(expr)
    }

    /// Synthesizes up to `n` *validated* novel templates: each must
    /// instantiate and execute on the probe table for both truth targets,
    /// and must not duplicate a signature in `existing`.
    pub fn generate(
        &mut self,
        n: usize,
        probe: &Table,
        existing: &mut rustc_hash::FxHashSet<String>,
        rng: &mut impl Rng,
    ) -> Vec<LfTemplate> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < n * 40 {
            attempts += 1;
            let tpl = self.propose(rng);
            let sig = tpl.signature();
            if existing.contains(&sig) {
                continue;
            }
            // Validation: instantiable to a Supported AND a Refuted claim.
            let ok_true = tpl.instantiate(probe, rng, true).is_some();
            let ok_false = tpl.instantiate(probe, rng, false).is_some();
            if ok_true && ok_false {
                existing.insert(sig);
                out.push(tpl);
            }
        }
        out
    }

    fn fresh_col(&mut self) -> LfExpr {
        let i = self.next_col;
        self.next_col += 1;
        LfExpr::ColumnHole(i)
    }

    fn fresh_val(&mut self) -> LfExpr {
        let i = self.next_val;
        self.next_val += 1;
        LfExpr::ValueHole(i)
    }

    fn gen_view(&mut self, rng: &mut impl Rng, depth: usize) -> LfExpr {
        let want = self.dist.sample_filter_depth(rng);
        if depth >= want {
            return LfExpr::AllRows;
        }
        self.gen_filtered_view(rng, depth)
    }

    /// A view guaranteed to carry at least one filter on top.
    fn gen_filtered_view(&mut self, rng: &mut impl Rng, depth: usize) -> LfExpr {
        use LfOp::*;
        let op = self
            .dist
            .sample_op(&[FilterEq, FilterGreater, FilterLess, FilterGreaterEq, FilterLessEq], rng);
        let inner = self.gen_view(rng, depth + 1);
        LfExpr::Apply(op, vec![inner, self.fresh_col(), self.fresh_val()])
    }

    fn gen_row(&mut self, rng: &mut impl Rng) -> LfExpr {
        use LfOp::*;
        let op = self.dist.sample_op(&[Argmax, Argmin, NthArgmax, NthArgmin], rng);
        let view = self.gen_view(rng, 1); // keep superlative views shallow
        match op {
            Argmax | Argmin => LfExpr::Apply(op, vec![view, self.fresh_col()]),
            _ => LfExpr::Apply(op, vec![view, self.fresh_col(), self.fresh_val()]),
        }
    }

    fn gen_scalar(&mut self, rng: &mut impl Rng, depth: usize) -> LfExpr {
        use LfOp::*;
        let ops: &[LfOp] = if depth >= 2 {
            &[Count, Max, Min, Sum, Avg, Hop]
        } else {
            &[Count, Max, Min, Sum, Avg, NthMax, NthMin, Hop, Diff]
        };
        let op = self.dist.sample_op(ops, rng);
        match op {
            Count => LfExpr::Apply(op, vec![self.gen_view(rng, 0)]),
            Max | Min | Sum | Avg => {
                LfExpr::Apply(op, vec![self.gen_view(rng, 1), self.fresh_col()])
            }
            NthMax | NthMin => {
                LfExpr::Apply(op, vec![self.gen_view(rng, 1), self.fresh_col(), self.fresh_val()])
            }
            Hop => LfExpr::Apply(op, vec![self.gen_row(rng), self.fresh_col()]),
            Diff => {
                let a = self.gen_scalar(rng, depth + 1);
                let b = self.gen_scalar(rng, depth + 1);
                LfExpr::Apply(op, vec![a, b])
            }
            // `ops` above admits only the scalar operators already matched;
            // fall back to a count so the synthesis stays well-typed.
            _ => LfExpr::Apply(Count, vec![self.gen_view(rng, 0)]),
        }
    }

    fn gen_bool(&mut self, rng: &mut impl Rng, depth: usize) -> LfExpr {
        use LfOp::*;
        let ops: &[LfOp] = if depth >= 1 {
            &[Eq, RoundEq, Greater, Less, Only, MostEq, MostGreater, MostLess, AllGreater, AllLess]
        } else {
            &[
                Eq,
                NotEq,
                RoundEq,
                Greater,
                Less,
                And,
                Only,
                MostEq,
                MostGreater,
                MostLess,
                AllGreater,
                AllLess,
                AllGreaterEq,
                AllLessEq,
            ]
        };
        let op = self.dist.sample_op(ops, rng);
        match op {
            Eq | NotEq | RoundEq => {
                let scalar = self.gen_scalar(rng, 0);
                LfExpr::Apply(op, vec![scalar, self.fresh_val()])
            }
            Greater | Less => {
                // Either scalar-vs-literal or scalar-vs-scalar.
                let a = self.gen_scalar(rng, 0);
                let b = if rng.gen_bool(0.5) { self.fresh_val() } else { self.gen_scalar(rng, 1) };
                LfExpr::Apply(op, vec![a, b])
            }
            And => {
                let a = self.gen_bool(rng, depth + 1);
                let b = self.gen_bool(rng, depth + 1);
                LfExpr::Apply(op, vec![a, b])
            }
            Only => LfExpr::Apply(op, vec![self.gen_filtered_view(rng, 1)]),
            _ => {
                // Majority family.
                LfExpr::Apply(op, vec![LfExpr::AllRows, self.fresh_col(), self.fresh_val()])
            }
        }
    }
}

/// Convenience: extend a template bank with `n` auto-generated logic
/// templates validated on `probe`.
pub fn extend_bank_auto(
    bank: &mut crate::TemplateBank,
    n: usize,
    probe: &Table,
    seed: u64,
) -> usize {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut gen = AutoGenerator::fit(bank.logic());
    let mut existing: rustc_hash::FxHashSet<String> =
        bank.logic().iter().map(|t| t.signature()).collect();
    let new_templates = gen.generate(n, probe, &mut existing, &mut rng);
    let mut added = 0;
    for t in new_templates {
        if bank.add_logic(t) {
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TemplateBank;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probe() -> Table {
        Table::from_strings(
            "probe",
            &[
                vec!["name", "city", "points", "wins"],
                vec!["Reds", "Oslo", "77", "21"],
                vec!["Blues", "Lima", "64", "18"],
                vec!["Greens", "Kyiv", "81", "24"],
                vec!["Golds", "Quito", "59", "15"],
                vec!["Silvers", "Porto", "70", "19"],
            ],
        )
        .unwrap_or_else(|e| panic!("probe table: {e:?}"))
    }

    #[test]
    fn distribution_reflects_seed_corpus() {
        let bank = TemplateBank::builtin();
        let dist = ProgramDistribution::fit(bank.logic());
        // eq is the most common root in the builtin bank.
        assert!(dist.weight(LfOp::Eq) > dist.weight(LfOp::NotEq));
        assert!(dist.weight(LfOp::FilterEq) > 0.0);
    }

    #[test]
    fn proposals_are_boolean_rooted_templates() {
        let bank = TemplateBank::builtin();
        let mut gen = AutoGenerator::fit(bank.logic());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let tpl = gen.propose(&mut rng);
            assert!(tpl.expr().has_holes(), "template without holes: {}", tpl.signature());
            // Round-trips through the parser.
            let reparsed = logicforms::parse(&tpl.signature())
                .unwrap_or_else(|e| panic!("reparse {}: {e}", tpl.signature()));
            assert_eq!(&reparsed, tpl.expr());
        }
    }

    #[test]
    fn generated_templates_are_valid_and_novel() {
        let bank = TemplateBank::builtin();
        let mut gen = AutoGenerator::fit(bank.logic());
        let mut existing: rustc_hash::FxHashSet<String> =
            bank.logic().iter().map(|t| t.signature()).collect();
        let before = existing.len();
        let mut rng = StdRng::seed_from_u64(2);
        let new_templates = gen.generate(10, &probe(), &mut existing, &mut rng);
        assert!(new_templates.len() >= 5, "only {} generated", new_templates.len());
        assert_eq!(existing.len(), before + new_templates.len());
        // Each validated template instantiates with correct labels.
        for t in &new_templates {
            let claim = t.instantiate(&probe(), &mut rng, true);
            if let Some(c) = claim {
                let truth = logicforms::evaluate_truth(&c.expr, &probe())
                    .unwrap_or_else(|e| panic!("evaluate: {e:?}"));
                assert!(truth);
            }
        }
    }

    #[test]
    fn extend_bank_grows_bank() {
        let mut bank = TemplateBank::builtin();
        let before = bank.logic().len();
        let added = extend_bank_auto(&mut bank, 8, &probe(), 3);
        assert!(added >= 4, "only {added} added");
        assert_eq!(bank.logic().len(), before + added);
    }

    #[test]
    fn pipeline_runs_with_auto_extended_bank() {
        let mut bank = TemplateBank::builtin();
        extend_bank_auto(&mut bank, 8, &probe(), 5);
        let pipeline = crate::UctrPipeline::new(crate::UctrConfig::verification()).with_bank(bank);
        let samples = pipeline.generate(&[crate::TableWithContext::bare(probe())]);
        assert!(!samples.is_empty());
    }
}
