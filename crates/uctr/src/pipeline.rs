//! The UCTR data-generation pipeline (paper §III and Algorithm 1).
//!
//! Orchestrates the four basic components — Program-Executor, NL-Generator,
//! Table-To-Text, Text-To-Table — over a collection of unlabeled tables
//! (with optional surrounding text) and produces labeled [`Sample`]s:
//!
//! * **table-only** samples: instantiate a program on the table, execute,
//!   verbalize (the homogeneous setting);
//! * **table splitting** (§III-A): execute on the full table, move one
//!   highlighted row into a generated sentence, keep the rest as the
//!   sub-table — a joint table-text sample;
//! * **table expansion** (§III-B): integrate a record from the surrounding
//!   paragraph into the table, generate against the expanded table, and
//!   emit the original table + paragraph as the evidence;
//! * **text-only** samples: a row verbalized to a sentence with a lookup
//!   question about it (the A2 ablation source).
//!
//! Every config flag corresponds to a row of the paper's ablation grid
//! (Table VIII).

use crate::program::{GenScratch, ProgramOutput};
use crate::sample::{AnswerKind, EvidenceType, Label, ProgramKind, Sample, Verdict};
use crate::telemetry::{
    Discard, KindSlot, PipelineReport, Source, Stage, TelemetryBank, Timer, WorkerReport,
};
use crate::templates::{FeasibleSet, TemplateBank};
use nlgen::{NlGenerator, NoiseConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use tabular::{ExecContext, SharedTable, Table};
use textops::{table_to_text_with, text_to_table};

/// Which task the generated data trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    QuestionAnswering,
    FactVerification,
}

/// Pipeline configuration; every flag maps to an ablation row (Table VIII).
#[derive(Debug, Clone)]
pub struct UctrConfig {
    pub task: TaskKind,
    /// Program types (columns of the ablation grid).
    pub use_sql: bool,
    pub use_logic: bool,
    pub use_arith: bool,
    /// Data sources (rows of the ablation grid).
    pub table_only: bool,
    pub text_only: bool,
    /// Table-To-Text / Text-To-Table joint samples ("Table↔Text").
    pub table_split: bool,
    pub table_expand: bool,
    /// How many programs to attempt per table per enabled source.
    pub samples_per_table: usize,
    /// Generation-noise configuration.
    pub noise: NoiseConfig,
    /// Fraction of verification samples turned into `Unknown` by pairing a
    /// claim with evidence that cannot decide it.
    pub unknown_rate: f64,
    pub seed: u64,
}

impl UctrConfig {
    /// Standard QA configuration (SQL + arithmetic, all sources).
    pub fn qa() -> UctrConfig {
        UctrConfig {
            task: TaskKind::QuestionAnswering,
            use_sql: true,
            use_logic: false,
            use_arith: true,
            table_only: true,
            text_only: true,
            table_split: true,
            table_expand: true,
            samples_per_table: 8,
            noise: NoiseConfig::default(),
            unknown_rate: 0.0,
            seed: 13,
        }
    }

    /// Standard fact-verification configuration (logical forms).
    pub fn verification() -> UctrConfig {
        UctrConfig {
            task: TaskKind::FactVerification,
            use_sql: false,
            use_logic: true,
            use_arith: false,
            table_only: true,
            text_only: true,
            table_split: true,
            table_expand: true,
            samples_per_table: 8,
            noise: NoiseConfig::default(),
            unknown_rate: 0.0,
            seed: 13,
        }
    }

    /// The `-w/o T2T` ablation: no Table-To-Text / Text-To-Table operators.
    pub fn without_t2t(mut self) -> UctrConfig {
        self.table_split = false;
        self.table_expand = false;
        self
    }
}

/// One unlabeled input: a table with optional surrounding text and a topic
/// tag (used for the Figure 1 topic-shift experiment).
#[derive(Debug, Clone)]
pub struct TableWithContext {
    /// The input table, behind a shared handle so every accepted sample
    /// over it clones a reference count instead of the grid.
    pub table: SharedTable,
    pub paragraph: Option<String>,
    pub topic: String,
}

impl TableWithContext {
    pub fn bare(table: impl Into<SharedTable>) -> TableWithContext {
        TableWithContext { table: table.into(), paragraph: None, topic: String::new() }
    }
}

/// The unified UCTR pipeline.
pub struct UctrPipeline {
    config: UctrConfig,
    bank: TemplateBank,
    generator: NlGenerator,
}

impl UctrPipeline {
    /// Builds a pipeline with the built-in template bank and a default
    /// generator configured by `config.noise`.
    pub fn new(config: UctrConfig) -> UctrPipeline {
        let generator = NlGenerator::new().with_noise(config.noise);
        UctrPipeline { config, bank: TemplateBank::builtin(), generator }
    }

    /// Replaces the template bank (e.g. with mined templates).
    pub fn with_bank(mut self, bank: TemplateBank) -> UctrPipeline {
        self.bank = bank;
        self
    }

    /// Replaces the NL generator (e.g. a domain-fit one).
    pub fn with_generator(mut self, generator: NlGenerator) -> UctrPipeline {
        self.generator = generator;
        self
    }

    pub fn config(&self) -> &UctrConfig {
        &self.config
    }

    /// Runs Algorithm 1 over the inputs and returns the synthetic samples.
    pub fn generate(&self, inputs: &[TableWithContext]) -> Vec<Sample> {
        self.generate_with_report(inputs).0
    }

    /// Like [`UctrPipeline::generate`], but also returns the run's
    /// [`PipelineReport`] — the per-kind / per-source generation funnel and
    /// wall-clock histograms gathered from lock-free counters.
    pub fn generate_with_report(
        &self,
        inputs: &[TableWithContext],
    ) -> (Vec<Sample>, PipelineReport) {
        let tel = TelemetryBank::new();
        let mut out: Vec<Sample> = Vec::new();
        let mut scratch = GenScratch::default();
        self.generate_request(&self.config, inputs, &mut out, &tel, &mut scratch);
        let report = tel.report(1);
        (out, report)
    }

    /// Serving entry point ([`crate::serve`]): runs the full generation
    /// loop — including finalization — under a caller-supplied config (the
    /// per-request override of seed / task / samples-per-table), appending
    /// accepted samples to `out`, recording telemetry into `tel`, and
    /// reusing the caller's warm `scratch` buffers.
    ///
    /// The sample bytes are a pure function of `(cfg, inputs)`: every input
    /// seeds its own RNG stream from `(cfg.seed, input index)` exactly like
    /// the batch paths, and finalization reseeds from `cfg.seed` over the
    /// samples this call appended — never over pre-existing `out` content.
    /// Nothing depends on the calling thread or on co-running requests,
    /// which is what makes daemon responses byte-identical regardless of
    /// worker interleaving.
    pub fn generate_request(
        &self,
        cfg: &UctrConfig,
        inputs: &[TableWithContext],
        out: &mut Vec<Sample>,
        tel: &TelemetryBank,
        scratch: &mut GenScratch,
    ) {
        let base = out.len();
        for (index, input) in inputs.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(input_seed(cfg.seed, index as u64));
            self.generate_for(cfg, input, &mut rng, out, tel, scratch);
        }
        self.finalize(cfg, &mut out[base..], tel);
    }

    /// Parallel variant of [`UctrPipeline::generate`]: workers pull inputs
    /// off a shared work queue and the claimed ranges are concatenated in
    /// input order. Every input owns an RNG stream derived from
    /// `(config.seed, input index)`, so the output — and the telemetry
    /// counters — are identical for a fixed seed *regardless of thread
    /// count*. Useful when synthesizing tens of thousands of samples (the
    /// paper generates up to ~80k for FEVEROUS).
    pub fn generate_parallel(&self, inputs: &[TableWithContext], threads: usize) -> Vec<Sample> {
        self.generate_parallel_with_report(inputs, threads).0
    }

    /// Like [`UctrPipeline::generate_parallel`], but also returns the run's
    /// [`PipelineReport`].
    ///
    /// Scheduling is a chunked-claim work queue rather than static
    /// sharding: each worker repeatedly `fetch_add`s a shared atomic
    /// cursor to claim the next contiguous range of inputs, so a worker
    /// that lands on a heavy table (a ragged zoo's 200-row outlier) never
    /// strands the untouched remainder of a pre-assigned shard — the other
    /// workers keep draining the queue. Determinism survives because
    /// content and order are decoupled from scheduling: sample bytes
    /// depend only on the per-input seed (global index), and each claim
    /// remembers its start index so ranges re-sort into input order after
    /// the join.
    ///
    /// Each worker fills a private [`TelemetryBank`] (no shared cache
    /// lines on the hot path); banks are merged after the workers are
    /// joined, and per-worker claim counts land in the report's
    /// non-deterministic `workers` section.
    pub fn generate_parallel_with_report(
        &self,
        inputs: &[TableWithContext],
        threads: usize,
    ) -> (Vec<Sample>, PipelineReport) {
        let threads = threads.clamp(1, inputs.len().max(1));
        if threads == 1 {
            return self.generate_with_report(inputs);
        }
        // ~8 claims per worker: granular enough to rebalance ragged
        // workloads, coarse enough that the cursor is touched per range,
        // not per input.
        let claim = (inputs.len() / (threads * 8)).max(1);
        let cursor = AtomicUsize::new(0);
        let tel = TelemetryBank::new();
        let mut workers: Vec<WorkerReport> = Vec::with_capacity(threads);
        let mut ranges: Vec<(usize, Vec<Sample>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let worker_tel = TelemetryBank::new();
                        let mut scratch = GenScratch::default();
                        let mut claimed: Vec<(usize, Vec<Sample>)> = Vec::new();
                        let mut stats =
                            WorkerReport { worker: worker as u64, claims: 0, inputs: 0 };
                        loop {
                            let start = cursor.fetch_add(claim, Ordering::Relaxed);
                            if start >= inputs.len() {
                                break;
                            }
                            let end = (start + claim).min(inputs.len());
                            stats.claims += 1;
                            stats.inputs += (end - start) as u64;
                            let mut out = Vec::new();
                            for (offset, input) in inputs[start..end].iter().enumerate() {
                                let mut rng = StdRng::seed_from_u64(input_seed(
                                    self.config.seed,
                                    (start + offset) as u64,
                                ));
                                self.generate_for(
                                    &self.config,
                                    input,
                                    &mut rng,
                                    &mut out,
                                    &worker_tel,
                                    &mut scratch,
                                );
                            }
                            claimed.push((start, out));
                        }
                        (claimed, worker_tel, stats)
                    })
                })
                .collect();
            let mut ranges = Vec::new();
            for h in handles {
                let (claimed, worker_tel, stats) = h.join().expect("generation worker panicked");
                tel.merge(&worker_tel);
                workers.push(stats);
                ranges.extend(claimed);
            }
            ranges
        });
        // Claimed ranges are disjoint and cover 0..len, so sorting by start
        // and flattening restores exact input order.
        ranges.sort_by_key(|(start, _)| *start);
        let mut out: Vec<Sample> = ranges.into_iter().flat_map(|(_, v)| v).collect();
        self.finalize(&self.config, &mut out, &tel);
        let mut report = tel.report(threads);
        report.workers = workers;
        (out, report)
    }

    /// Post-generation passes over the merged sample list. Runs on the
    /// final, input-ordered output with a fresh seed so its effect is
    /// independent of how generation was sharded.
    fn finalize(&self, cfg: &UctrConfig, out: &mut [Sample], tel: &TelemetryBank) {
        // Unknown verdicts: pair a fraction of claims with evidence from a
        // different table so the claim becomes undecidable.
        if cfg.task == TaskKind::FactVerification && cfg.unknown_rate > 0.0 {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            self.inject_unknowns(cfg, out, &mut rng, tel);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_for(
        &self,
        cfg: &UctrConfig,
        input: &TableWithContext,
        rng: &mut StdRng,
        out: &mut Vec<Sample>,
        tel: &TelemetryBank,
        scratch: &mut GenScratch,
    ) {
        let table = &input.table;
        let degenerate = table.n_rows() == 0 || table.n_cols() == 0;
        tel.input(degenerate);
        if degenerate {
            return;
        }
        // One execution context per input table, shared by all
        // `samples_per_table` program runs against it — and one feasible
        // template set derived from it: the schema index is consulted once
        // per context, so each of the attempts below is a straight uniform
        // draw over the feasible stratum (no per-pair requirement check).
        let ctx = ExecContext::new(table);
        let feasible = self.bank.feasible_set(&ctx);
        let n = cfg.samples_per_table;
        let push = |source: Source, s: Sample, out: &mut Vec<Sample>| {
            tel.source_accept(source);
            tel.stage(KindSlot::of(&s.program), Stage::Accepted);
            out.push(with_topic(s, input));
        };

        if cfg.table_only {
            for _ in 0..n {
                tel.source_attempt(Source::TableOnly);
                if let Some(s) =
                    self.table_only_sample(cfg, table, &ctx, &feasible, rng, tel, scratch)
                {
                    push(Source::TableOnly, s, out);
                }
            }
        }
        if cfg.text_only {
            // The (empty) evidence table of a text-only sample depends only
            // on the input's title: build it once per input and share the
            // handle across every accepted sample.
            let empty = Table::from_strings(&table.title, &[vec![]]).ok().map(SharedTable::new);
            for _ in 0..n.div_ceil(2) {
                tel.source_attempt(Source::TextOnly);
                if let Some(s) =
                    self.text_only_sample(cfg, table, &ctx, empty.as_ref(), rng, tel, scratch)
                {
                    push(Source::TextOnly, s, out);
                }
            }
        }
        if cfg.table_split {
            for _ in 0..n {
                tel.source_attempt(Source::TableSplit);
                if let Some(s) = self.split_sample(cfg, table, &ctx, &feasible, rng, tel, scratch) {
                    push(Source::TableSplit, s, out);
                }
            }
        }
        if cfg.table_expand {
            if let Some(paragraph) = &input.paragraph {
                // The paragraph integration is deterministic (no RNG), so
                // hoist it — and the expanded table's execution context and
                // feasible template set — out of the attempt loop. The
                // expanded table is the input table plus one integrated
                // row, so the context is a single-row delta of `ctx`, not a
                // fresh scan.
                let expanded = text_to_table(table, paragraph);
                let expanded_ctx =
                    expanded.as_ref().map(|e| ctx.with_row_appended(table, &e.expanded));
                let expanded_feasible = expanded_ctx.as_ref().map(|e| self.bank.feasible_set(e));
                // The evidence context (the paragraph split into sentences)
                // is likewise deterministic per input: split once, clone per
                // accepted sample.
                let context = tabular::text::split_sentences(paragraph);
                for _ in 0..n {
                    tel.source_attempt(Source::TableExpand);
                    let (Some(expanded), Some(ectx), Some(efs)) =
                        (&expanded, &expanded_ctx, &expanded_feasible)
                    else {
                        continue;
                    };
                    if let Some(s) = self
                        .expand_sample(cfg, table, &context, expanded, ectx, efs, rng, tel, scratch)
                    {
                        push(Source::TableExpand, s, out);
                    }
                }
            }
        }
    }

    /// A program executed directly on the table (homogeneous setting).
    #[allow(clippy::too_many_arguments)]
    fn table_only_sample(
        &self,
        cfg: &UctrConfig,
        table: &SharedTable,
        ctx: &ExecContext,
        feasible: &FeasibleSet<'_>,
        rng: &mut StdRng,
        tel: &TelemetryBank,
        scratch: &mut GenScratch,
    ) -> Option<Sample> {
        let (text, label, program, answer_kind, _hl) =
            self.run_program(cfg, table, ctx, feasible, rng, tel, scratch)?;
        Some(Sample {
            table: table.clone(),
            context: Vec::new(),
            text,
            label,
            evidence: EvidenceType::TableOnly,
            program,
            answer_kind,
            topic: String::new(),
        })
    }

    /// Table splitting (§III-A): program on the full table, one highlighted
    /// row verbalized into a sentence, evidence = sub-table + sentence.
    #[allow(clippy::too_many_arguments)]
    fn split_sample(
        &self,
        cfg: &UctrConfig,
        table: &SharedTable,
        ctx: &ExecContext,
        feasible: &FeasibleSet<'_>,
        rng: &mut StdRng,
        tel: &TelemetryBank,
        scratch: &mut GenScratch,
    ) -> Option<Sample> {
        if table.n_rows() < 3 {
            return None;
        }
        let (text, label, program, answer_kind, highlighted) =
            self.run_program(cfg, table, ctx, feasible, rng, tel, scratch)?;
        let kind = KindSlot::of(&program);
        // Pick a highlighted row to move into text.
        let rows = &mut scratch.rows;
        rows.clear();
        rows.extend(highlighted.iter().map(|&(r, _)| r));
        rows.sort_unstable();
        rows.dedup();
        let Some(&row) = rows.choose(rng) else {
            tel.discard(kind, Discard::PostFilter);
            return None;
        };
        let Some(split) = table_to_text_with(table, row, rng, &mut scratch.text) else {
            tel.discard(kind, Discard::PostFilter);
            return None;
        };
        Some(Sample {
            table: split.sub_table.into(),
            context: vec![split.sentence],
            text,
            label,
            evidence: EvidenceType::TableText,
            program,
            answer_kind,
            topic: String::new(),
        })
    }

    /// Table expansion (§III-B): integrate a record from the paragraph,
    /// generate on the expanded table, evidence = original table + text.
    /// The caller performs (and caches) the paragraph integration and the
    /// sentence-split evidence context, since both are deterministic per
    /// input.
    #[allow(clippy::too_many_arguments)]
    fn expand_sample(
        &self,
        cfg: &UctrConfig,
        table: &SharedTable,
        context: &[String],
        expanded: &textops::ExpandResult,
        ectx: &ExecContext,
        efs: &FeasibleSet<'_>,
        rng: &mut StdRng,
        tel: &TelemetryBank,
        scratch: &mut GenScratch,
    ) -> Option<Sample> {
        let (text, label, program, answer_kind, highlighted) =
            self.run_program(cfg, &expanded.expanded, ectx, efs, rng, tel, scratch)?;
        // Only keep samples whose reasoning actually touches the new row —
        // otherwise the paragraph is decoration, not evidence.
        let new_row = expanded.expanded.n_rows() - 1;
        if !highlighted.iter().any(|&(r, _)| r == new_row) {
            tel.discard(KindSlot::of(&program), Discard::PostFilter);
            return None;
        }
        Some(Sample {
            table: table.clone(),
            context: context.to_vec(),
            text,
            label,
            evidence: EvidenceType::TableText,
            program,
            answer_kind,
            topic: String::new(),
        })
    }

    /// Text-only sample: a verbalized row with a lookup question (QA) or a
    /// claim about it (verification).
    #[allow(clippy::too_many_arguments)]
    fn text_only_sample(
        &self,
        cfg: &UctrConfig,
        table: &Table,
        ctx: &ExecContext,
        empty: Option<&SharedTable>,
        rng: &mut StdRng,
        tel: &TelemetryBank,
        scratch: &mut GenScratch,
    ) -> Option<Sample> {
        tel.stage(KindSlot::None, Stage::Attempted);
        let sample = self.text_only_inner(cfg, table, ctx, empty, rng, scratch);
        if sample.is_none() {
            tel.discard(KindSlot::None, Discard::PostFilter);
        }
        sample
    }

    #[allow(clippy::too_many_arguments)]
    fn text_only_inner(
        &self,
        cfg: &UctrConfig,
        table: &Table,
        ctx: &ExecContext,
        empty: Option<&SharedTable>,
        rng: &mut StdRng,
        scratch: &mut GenScratch,
    ) -> Option<Sample> {
        let GenScratch { cols, buf, text, .. } = scratch;
        let row = rng.gen_range(0..table.n_rows());
        let mut sentence = String::new();
        if !textops::describe_row_with(table, row, rng, text, &mut sentence) {
            return None;
        }
        let ecol = textops::entity_column(table);
        let entity = table.cell(row, ecol).filter(|v| !v.is_null())?.to_string();
        // Pick a non-entity, non-null cell to ask about.
        cols.clear();
        cols.extend(
            (0..table.n_cols())
                .filter(|&c| c != ecol && table.cell(row, c).is_some_and(|v| !v.is_null())),
        );
        let &col = cols.choose(rng)?;
        let col_name = table.column_name(col)?.to_string();
        let value = table.cell(row, col)?.to_string();
        let empty_table = empty?;
        match cfg.task {
            TaskKind::QuestionAnswering => Some(Sample {
                table: empty_table.clone(),
                context: vec![sentence],
                text: format!("What is the {col_name} of {entity}?"),
                label: Label::Answer(value),
                evidence: EvidenceType::TextOnly,
                program: ProgramKind::None,
                answer_kind: AnswerKind::Span,
                topic: String::new(),
            }),
            TaskKind::FactVerification => {
                let supported = rng.gen_bool(0.5);
                let (claim_value, verdict) = if supported {
                    (value, Verdict::Supported)
                } else {
                    // A different value from the same column. The context's
                    // non-null pool is the column scan minus nulls in row
                    // order, so the filtered index buffer has the same
                    // length as the old rendered `Vec<String>` — `choose`
                    // consumes the identical draw.
                    use std::fmt::Write as _;
                    let pool = ctx.non_null_values(col);
                    cols.clear();
                    for (i, v) in pool.iter().enumerate() {
                        buf.clear();
                        let _ = write!(buf, "{v}");
                        if *buf != value {
                            cols.push(i);
                        }
                    }
                    match cols.choose(rng) {
                        Some(&i) => (pool[i].to_string(), Verdict::Refuted),
                        None => return None,
                    }
                };
                Some(Sample {
                    table: empty_table.clone(),
                    context: vec![sentence],
                    text: format!("The {col_name} of {entity} is {claim_value}."),
                    label: Label::Verdict(verdict),
                    evidence: EvidenceType::TextOnly,
                    program: ProgramKind::None,
                    answer_kind: AnswerKind::NotApplicable,
                    topic: String::new(),
                })
            }
        }
    }

    /// Samples a program kind per the config and drives one template
    /// through the generic funnel: Attempted → instantiate → Instantiated →
    /// execute → Executed → verbalize. Every kind-specific behavior lives
    /// behind [`crate::program::ProgramTemplate`]; this is the only place
    /// the telemetry funnel is driven. Returns (text, label, program,
    /// answer kind, highlighted cells).
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn run_program(
        &self,
        cfg: &UctrConfig,
        table: &Table,
        ctx: &ExecContext,
        feasible: &FeasibleSet<'_>,
        rng: &mut StdRng,
        tel: &TelemetryBank,
        scratch: &mut GenScratch,
    ) -> Option<(String, Label, ProgramKind, AnswerKind, Vec<(usize, usize)>)> {
        let kind = match cfg.task {
            TaskKind::FactVerification => KindSlot::Logic,
            TaskKind::QuestionAnswering => {
                // Enabled kinds on the stack — the draw order (sql, arith,
                // logic) and the single `choose` call are part of the
                // fixed-seed determinism contract. The feasible-set draw
                // below must consume exactly one draw when feasible
                // templates exist and none otherwise.
                let mut kinds = [KindSlot::Sql; 3];
                let mut n = 0;
                for (flag, slot) in [
                    (cfg.use_sql, KindSlot::Sql),
                    (cfg.use_arith, KindSlot::Arith),
                    (cfg.use_logic, KindSlot::Logic),
                ] {
                    if flag {
                        kinds[n] = slot;
                        n += 1;
                    }
                }
                *kinds[..n].choose(rng)?
            }
        };
        tel.stage(kind, Stage::Attempted);
        // Schema-indexed template selection: the caller computed the
        // context's feasible set once (one `satisfied_by` per distinct
        // requirement lattice point), so selection is a single uniform
        // draw over the feasible stratum — the per-pair requirement check
        // that used to sit here is gone. Soundness (pinned by the property
        // tests): a requirement only rejects tables on which
        // `try_instantiate` fails under *every* RNG stream, so no
        // reachable sample is ever lost. Draw-order contract: on a table
        // satisfying every lattice point the feasible stratum IS the full
        // stratum in insertion order, so the draw is stream-identical to
        // the pre-index bank draw — the byte-identical golden outputs rely
        // on the golden tables satisfying every builtin requirement
        // (asserted in tests/golden_pipeline.rs).
        let Some(tpl) = feasible.choose(kind, rng) else {
            if self.bank.stratum_len(kind) == 0 {
                tel.discard(kind, Discard::NoTemplate);
            } else {
                // A non-empty stratum with an empty feasible set: every
                // template of this kind is statically infeasible on this
                // table. The funnel keeps counting these as prefiltered
                // skips (zero draws consumed).
                tel.prefilter(kind);
            }
            return None;
        };
        let mut inst =
            match tel.timed(Timer::Instantiate, || tpl.try_instantiate(table, ctx, rng, scratch)) {
                Ok(inst) => inst,
                Err(reason) => {
                    tel.discard(kind, reason);
                    return None;
                }
            };
        tel.stage(kind, Stage::Instantiated);
        if inst.pre_executed() {
            tel.stage(kind, Stage::Executed);
        } else {
            match tel.timed(Timer::Execute, || inst.execute(table, ctx, scratch)) {
                Ok(()) => tel.stage(kind, Stage::Executed),
                Err(reason) => {
                    tel.discard(kind, reason);
                    return None;
                }
            }
        }
        let text = tel.timed(Timer::NlGen, || inst.verbalize(&self.generator, rng, scratch));
        let ProgramOutput { label, program, answer_kind, highlighted } = inst.output();
        Some((text, label, program, answer_kind, highlighted))
    }

    /// Replaces the evidence of a random fraction of claims with evidence
    /// from another sample, relabeling them `Unknown`.
    fn inject_unknowns(
        &self,
        cfg: &UctrConfig,
        samples: &mut [Sample],
        rng: &mut StdRng,
        tel: &TelemetryBank,
    ) {
        let n = samples.len();
        if n < 2 {
            return;
        }
        for i in 0..n {
            if !rng.gen_bool(cfg.unknown_rate.min(1.0)) {
                continue;
            }
            let j = rng.gen_range(0..n - 1);
            let j = if j >= i { j + 1 } else { j };
            // Claim i paired with evidence j: the evidence cannot decide the
            // claim (different table), so the gold verdict becomes Unknown.
            if samples[j].table.title == samples[i].table.title {
                continue; // same source table could still decide the claim
            }
            let (table, context, evidence) =
                (samples[j].table.clone(), samples[j].context.clone(), samples[j].evidence);
            samples[i].table = table;
            samples[i].context = context;
            samples[i].evidence = evidence;
            samples[i].label = Label::Verdict(Verdict::Unknown);
            tel.unknown_injected();
        }
    }
}

fn with_topic(mut s: Sample, input: &TableWithContext) -> Sample {
    s.topic = input.topic.clone();
    s
}

/// Derives a per-input RNG seed from the pipeline seed and the input's
/// global index (splitmix64-style mix). Both the sequential and the
/// parallel paths seed each input's RNG this way, which is what makes
/// generation independent of the thread count.
fn input_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> Vec<TableWithContext> {
        let t1 = Table::from_strings(
            "Teams",
            &[
                vec!["team", "city", "points", "wins"],
                vec!["Reds", "Oslo", "77", "21"],
                vec!["Blues", "Lima", "64", "18"],
                vec!["Greens", "Kyiv", "81", "24"],
                vec!["Golds", "Quito", "59", "15"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"));
        let t2 = Table::from_strings(
            "Budgets",
            &[
                vec!["department", "2019", "2018"],
                vec!["Revenue", "8800", "8000"],
                vec!["Costs", "6100", "5900"],
                vec!["Equity", "3200", "4000"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"));
        vec![
            TableWithContext {
                table: t1.into(),
                paragraph: Some(
                    "The league expanded recently. Silvers has a city of Rome, a points of 70 and a wins of 19. Attendance rose."
                        .to_string(),
                ),
                topic: "sports".into(),
            },
            TableWithContext {
                table: t2.into(),
                paragraph: Some("Margins has a 2019 of 2700 and a 2018 of 2100.".to_string()),
                topic: "finance".into(),
            },
        ]
    }

    #[test]
    fn qa_pipeline_generates_labeled_samples() {
        let pipeline =
            UctrPipeline::new(UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() });
        let samples = pipeline.generate(&inputs());
        assert!(samples.len() > 10, "only {} samples", samples.len());
        for s in &samples {
            assert!(!s.text.is_empty());
            let answer =
                s.label.as_answer().unwrap_or_else(|| panic!("QA sample without answer label"));
            assert!(!answer.is_empty());
        }
    }

    #[test]
    fn verification_pipeline_generates_both_verdicts() {
        let pipeline = UctrPipeline::new(UctrConfig {
            noise: NoiseConfig::off(),
            ..UctrConfig::verification()
        });
        let samples = pipeline.generate(&inputs());
        let sup =
            samples.iter().filter(|s| s.label.as_verdict() == Some(Verdict::Supported)).count();
        let refuted =
            samples.iter().filter(|s| s.label.as_verdict() == Some(Verdict::Refuted)).count();
        assert!(sup > 0, "no supported claims in {} samples", samples.len());
        assert!(refuted > 0, "no refuted claims in {} samples", samples.len());
    }

    #[test]
    fn evidence_types_cover_sources() {
        let pipeline =
            UctrPipeline::new(UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() });
        let samples = pipeline.generate(&inputs());
        let has = |e: EvidenceType| samples.iter().any(|s| s.evidence == e);
        assert!(has(EvidenceType::TableOnly));
        assert!(has(EvidenceType::TextOnly));
        assert!(has(EvidenceType::TableText));
    }

    #[test]
    fn without_t2t_has_no_joint_samples_from_split() {
        let cfg = UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() }.without_t2t();
        let pipeline = UctrPipeline::new(cfg);
        let samples = pipeline.generate(&inputs());
        // text_only still enabled -> TextOnly remains, but no TableText.
        assert!(samples.iter().all(|s| s.evidence != EvidenceType::TableText));
    }

    #[test]
    fn schema_prefilter_skips_infeasible_pairs() {
        // A text-only table: every arithmetic template needs numeric cells
        // (or a number column), so each arith attempt is provably
        // infeasible and must be prefiltered rather than burned on the
        // instantiation sampler.
        let t = Table::from_strings(
            "t",
            &[
                vec!["name", "city"],
                vec!["Reds", "Oslo"],
                vec!["Blues", "Lima"],
                vec!["Greens", "Kyiv"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"));
        let cfg = UctrConfig {
            noise: NoiseConfig::off(),
            text_only: false,
            table_split: false,
            table_expand: false,
            ..UctrConfig::qa()
        };
        let (_, report) = UctrPipeline::new(cfg).generate_with_report(&[TableWithContext::bare(t)]);
        let arith = report
            .kinds
            .iter()
            .find(|k| k.kind == "arith")
            .unwrap_or_else(|| panic!("report always carries an arith row"));
        assert_eq!(
            arith.prefiltered, arith.attempted,
            "every arith attempt on a numberless table is prefiltered"
        );
        assert_eq!(arith.instantiated, 0);
        assert!(report.prefiltered() > 0, "expected prefilter hits:\n{}", report.summary());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() };
        let a = UctrPipeline::new(cfg.clone()).generate(&inputs());
        let b = UctrPipeline::new(cfg).generate(&inputs());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn unknown_injection_produces_unknowns() {
        let cfg = UctrConfig {
            unknown_rate: 0.3,
            noise: NoiseConfig::off(),
            ..UctrConfig::verification()
        };
        let samples = UctrPipeline::new(cfg).generate(&inputs());
        let unknowns =
            samples.iter().filter(|s| s.label.as_verdict() == Some(Verdict::Unknown)).count();
        assert!(unknowns > 0, "no Unknown labels among {}", samples.len());
    }

    /// A ragged workload for the scheduler: degenerate tables that cost
    /// nothing, tall split-heavy tables, and paragraph-bearing
    /// expand-heavy tables, interleaved so contiguous chunks have very
    /// different costs.
    fn ragged_zoo() -> Vec<TableWithContext> {
        let empty = Table::from_strings("empty", &[vec!["a", "b"]])
            .unwrap_or_else(|e| panic!("test table: {e}"));
        let mut zoo = Vec::new();
        for i in 0..4 {
            zoo.push(TableWithContext::bare(empty.clone()));
            let mut rows = vec![vec!["team".to_string(), "points".to_string()]];
            for r in 0..(6 + 3 * i) {
                rows.push(vec![format!("Team{i}{r}"), format!("{}", 40 + 7 * r + i)]);
            }
            let grid: Vec<Vec<&str>> =
                rows.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
            let tall = Table::from_strings(format!("tall{i}"), &grid)
                .unwrap_or_else(|e| panic!("test table: {e}"));
            zoo.push(TableWithContext::bare(tall));
            zoo.extend(inputs().into_iter().map(|mut input| {
                input.topic = format!("zoo{i}");
                input
            }));
        }
        zoo
    }

    #[test]
    fn parallel_generation_is_deterministic_and_complete() {
        let cfg = UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() };
        let pipeline = UctrPipeline::new(cfg);
        let data = ragged_zoo();
        let (baseline, base_report) = pipeline.generate_with_report(&data);
        assert!(!baseline.is_empty());
        // Any thread count must reproduce the sequential output byte for
        // byte, including every deterministic telemetry counter.
        for threads in 1..=8 {
            let (samples, report) = pipeline.generate_parallel_with_report(&data, threads);
            assert_eq!(samples.len(), baseline.len(), "sample count at {threads} threads");
            for (x, y) in samples.iter().zip(&baseline) {
                assert_eq!(x.text, y.text, "text at {threads} threads");
                assert_eq!(x.label, y.label, "label at {threads} threads");
                assert_eq!(x.evidence, y.evidence, "evidence at {threads} threads");
                assert_eq!(x.topic, y.topic, "topic at {threads} threads");
                assert_eq!(x.context, y.context, "context at {threads} threads");
            }
            assert!(
                report.deterministic_eq(&base_report),
                "telemetry diverged at {threads} threads:\n{}\nvs sequential:\n{}",
                report.summary(),
                base_report.summary()
            );
        }
    }

    #[test]
    fn generate_request_matches_dedicated_pipeline() {
        // A pipeline built for QA must serve a verification request with a
        // different seed byte-identically to a pipeline constructed with
        // that config — the property the serving daemon relies on to share
        // one template bank across per-request config overrides. Note the
        // generator's noise is pipeline-level (both off here); the request
        // override covers task / seed / samples_per_table / source flags.
        let base = UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() };
        let pipeline = UctrPipeline::new(base);
        let req_cfg = UctrConfig {
            noise: NoiseConfig::off(),
            seed: 99,
            samples_per_table: 3,
            unknown_rate: 0.2,
            ..UctrConfig::verification()
        };
        let tel = TelemetryBank::new();
        let mut scratch = GenScratch::default();
        let mut cold = Vec::new();
        pipeline.generate_request(&req_cfg, &inputs(), &mut cold, &tel, &mut scratch);
        let expected = UctrPipeline::new(req_cfg.clone()).generate(&inputs());
        assert_eq!(cold.len(), expected.len());
        for (x, y) in cold.iter().zip(&expected) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.label, y.label);
            assert_eq!(x.context, y.context);
        }
        // Re-serving the same request with warm scratch (and a dirty output
        // buffer from an unrelated request) must not change a byte: the
        // finalize pass only sees the samples this call appended.
        let mut warm = Vec::new();
        pipeline.generate_request(
            &UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() },
            &inputs(),
            &mut warm,
            &tel,
            &mut scratch,
        );
        let offset = warm.len();
        pipeline.generate_request(&req_cfg, &inputs(), &mut warm, &tel, &mut scratch);
        assert_eq!(warm.len() - offset, expected.len());
        for (x, y) in warm[offset..].iter().zip(&expected) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn topics_propagate() {
        let pipeline =
            UctrPipeline::new(UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() });
        let samples = pipeline.generate(&inputs());
        assert!(samples.iter().any(|s| s.topic == "sports"));
        assert!(samples.iter().any(|s| s.topic == "finance"));
    }

    #[test]
    fn split_samples_answer_survives_split() {
        // For split samples, the question was generated against the FULL
        // table; model evidence is sub-table + sentence. The gold answer is
        // stored before splitting, so it must be non-empty and the sample
        // must carry exactly one context sentence.
        let pipeline =
            UctrPipeline::new(UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() });
        let samples = pipeline.generate(&inputs());
        for s in samples.iter().filter(|s| s.evidence == EvidenceType::TableText) {
            if s.context.len() == 1 {
                assert!(!s.context[0].is_empty());
            }
        }
    }
}
