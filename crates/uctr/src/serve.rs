//! Generation-as-a-service: a long-running daemon over the batch pipeline.
//!
//! The batch entry points ([`crate::pipeline::UctrPipeline::generate`] and
//! friends) synthesize a corpus in one shot. Downstream consumers — the
//! self-training loops of the paper's follow-up work, counterfactual
//! augmentation pipelines — instead consume generation *on demand*: many
//! small requests, concurrent clients, and a tail-latency budget. This
//! module turns the pipeline into that service:
//!
//! * **Per-client RNG namespaces.** A request carries its own seed, and
//!   [`crate::pipeline::UctrPipeline::generate_request`] derives every
//!   input's RNG stream from `(request seed, input index)` alone. Same
//!   request bytes ⇒ byte-identical samples, regardless of worker
//!   interleaving, worker count, or co-running requests.
//! * **Bounded per-shard queues with explicit backpressure.** Admission
//!   round-robins requests across shards; a full shard rejects immediately
//!   with a `retry_after_ms` hint instead of buffering without bound.
//!   Within a shard, high-priority requests dequeue before normal ones.
//! * **Work stealing at request granularity.** Each shard owns one worker;
//!   an idle worker drains its own queue first, then steals whole requests
//!   from other shards (a request never splits across workers — that is
//!   what keeps interleaving away from the sample bytes).
//! * **Warm per-shard scratch pools.** Workers check [`GenScratch`] (which
//!   embeds the per-kind executor/kernel scratches of the near-zero-alloc
//!   path) out of their shard's pool and back in after every request, so
//!   steady-state requests skip cold buffer growth.
//! * **Live telemetry.** Shard [`TelemetryBank`]s aggregate the same
//!   funnel counters as the batch paths plus a per-request end-to-end
//!   latency histogram ([`Timer::Request`]); [`Daemon::stats`] merges them
//!   into a [`PipelineReport`] snapshot served over the wire.
//!
//! The wire protocol is deliberately tiny: length-prefixed JSON frames
//! (4-byte big-endian length, then a UTF-8 [`GenRequest`]/[`GenResponse`]
//! body) over TCP — no new dependencies, and a `loadgen` client fits in a
//! page of code. See DESIGN.md §11 for the request lifecycle.

use crate::pipeline::{TableWithContext, UctrConfig, UctrPipeline};
use crate::program::GenScratch;
use crate::sample::Sample;
use crate::telemetry::{PipelineReport, TelemetryBank, Timer};
use nlgen::NoiseConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{Error, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};
use tabular::Table;

/// Hard cap on one wire frame (64 MiB): a table batch larger than this is
/// a protocol error, not a bigger buffer.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Hard cap on the per-request `samples_per_table` override, so one
/// request cannot monopolize a worker for an unbounded stretch.
pub const MAX_SAMPLES_PER_TABLE: usize = 64;

/// How many warm [`GenScratch`] instances one shard pool retains.
const POOL_CAP: usize = 2;

/// How long an idle worker sleeps before re-scanning for stealable work.
/// Submission only notifies the home shard's condvar, so this poll bounds
/// the added latency of a steal (the home worker itself is woken exactly).
const STEAL_POLL: Duration = Duration::from_millis(1);

// ---------------------------------------------------------------------------
// Wire types.
// ---------------------------------------------------------------------------

/// One table in wire form: the header row followed by the body rows, all
/// as strings (cell typing is re-inferred daemon-side by
/// [`Table::from_strings`], exactly like every batch ingestion path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireTable {
    pub title: String,
    /// `rows[0]` is the header; remaining rows are the body.
    pub rows: Vec<Vec<String>>,
    /// Optional surrounding paragraph (enables the table-expansion source).
    pub paragraph: Option<String>,
    pub topic: String,
}

impl WireTable {
    /// Renders a pipeline input into wire form (client side).
    pub fn from_input(input: &TableWithContext) -> WireTable {
        let t = &input.table;
        let mut rows = Vec::with_capacity(t.n_rows() + 1);
        rows.push(
            (0..t.n_cols()).map(|c| t.column_name(c).unwrap_or_default().to_string()).collect(),
        );
        for r in 0..t.n_rows() {
            rows.push(
                (0..t.n_cols())
                    .map(|c| t.cell(r, c).map(|v| v.to_string()).unwrap_or_default())
                    .collect(),
            );
        }
        WireTable {
            title: t.title.clone(),
            rows,
            paragraph: input.paragraph.clone(),
            topic: input.topic.clone(),
        }
    }

    /// Parses the wire form back into a pipeline input (daemon side).
    pub fn to_input(&self) -> Result<TableWithContext, String> {
        let grid: Vec<Vec<&str>> =
            self.rows.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
        let table = Table::from_strings(self.title.as_str(), &grid)
            .map_err(|e| format!("table `{}`: {e}", self.title))?;
        Ok(TableWithContext {
            table: table.into(),
            paragraph: self.paragraph.clone(),
            topic: self.topic.clone(),
        })
    }
}

/// The sample specification of one request: which task's pipeline runs,
/// under which client seed, and how many programs to attempt per table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// `"qa"` or `"verification"`.
    pub task: String,
    /// The client's RNG namespace: every sample byte of the response is a
    /// pure function of `(seed, tables, spec)`.
    pub seed: u64,
    /// Programs attempted per table per enabled source; `0` uses the
    /// daemon default. Capped at [`MAX_SAMPLES_PER_TABLE`].
    pub samples_per_table: usize,
    /// `> 0` dequeues before normal-priority requests on the same shard.
    /// Admission (and its queue bound) is priority-blind.
    pub priority: u8,
}

impl RequestSpec {
    pub fn qa(seed: u64) -> RequestSpec {
        RequestSpec { task: "qa".into(), seed, samples_per_table: 0, priority: 0 }
    }

    pub fn verification(seed: u64) -> RequestSpec {
        RequestSpec { task: "verification".into(), seed, samples_per_table: 0, priority: 0 }
    }
}

/// One wire request. `op` selects the action: `"generate"` queues the
/// table batch for synthesis; `"stats"` returns a live telemetry snapshot
/// without queueing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenRequest {
    pub op: String,
    /// Client-chosen correlation id, echoed on the response. Not part of
    /// the RNG namespace: two requests differing only in `id` yield
    /// byte-identical samples.
    pub id: u64,
    pub spec: RequestSpec,
    pub tables: Vec<WireTable>,
}

impl GenRequest {
    pub fn generate(id: u64, spec: RequestSpec, tables: Vec<WireTable>) -> GenRequest {
        GenRequest { op: "generate".into(), id, spec, tables }
    }

    pub fn stats(id: u64) -> GenRequest {
        GenRequest { op: "stats".into(), id, spec: RequestSpec::qa(0), tables: Vec::new() }
    }
}

/// One wire response. `status` is `"ok"`, `"rejected"` (backpressure —
/// retry after `retry_after_ms`), or `"error"` (malformed request; `message`
/// says why).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenResponse {
    pub id: u64,
    pub status: String,
    /// Non-zero only when `status == "rejected"`.
    pub retry_after_ms: u64,
    pub message: String,
    pub samples: Vec<Sample>,
    /// Time the request waited in its shard queue before a worker took it.
    pub queue_ns: u64,
    /// Time the worker spent generating (parse + synthesis).
    pub service_ns: u64,
    /// Populated only for `"stats"` responses.
    pub stats: Option<ServeStats>,
}

impl GenResponse {
    fn base(id: u64, status: &str) -> GenResponse {
        GenResponse {
            id,
            status: status.into(),
            retry_after_ms: 0,
            message: String::new(),
            samples: Vec::new(),
            queue_ns: 0,
            service_ns: 0,
            stats: None,
        }
    }

    pub fn error(id: u64, message: &str) -> GenResponse {
        let mut r = GenResponse::base(id, "error");
        r.message = message.into();
        r
    }

    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    pub fn is_rejected(&self) -> bool {
        self.status == "rejected"
    }
}

/// A live snapshot of the daemon's counters and merged telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    pub shards: u64,
    pub queue_bound: u64,
    pub requests_admitted: u64,
    pub requests_rejected: u64,
    pub requests_completed: u64,
    pub requests_failed: u64,
    pub samples_generated: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub requests_stolen: u64,
    /// Current depth of each shard queue at snapshot time.
    pub queue_depths: Vec<u64>,
    /// Shard banks merged into one report; its `request` timing histogram
    /// is the daemon-side end-to-end latency distribution.
    pub report: PipelineReport,
}

// ---------------------------------------------------------------------------
// Admission errors.
// ---------------------------------------------------------------------------

/// Why [`Daemon::submit`] refused to queue a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The target shard's queue is at its bound: explicit backpressure.
    /// Retry after the hinted delay; nothing was buffered.
    Rejected { retry_after_ms: u64 },
    /// The request can never succeed as written (unknown op or task,
    /// daemon shutting down); retrying without changes is pointless.
    Invalid(String),
}

impl SubmitError {
    /// The wire response equivalent of this admission failure.
    pub fn into_response(self, id: u64) -> GenResponse {
        match self {
            SubmitError::Rejected { retry_after_ms } => {
                let mut r = GenResponse::base(id, "rejected");
                r.retry_after_ms = retry_after_ms;
                r.message = "shard queue full; retry after retry_after_ms".into();
                r
            }
            SubmitError::Invalid(message) => GenResponse::error(id, &message),
        }
    }
}

// ---------------------------------------------------------------------------
// Daemon configuration.
// ---------------------------------------------------------------------------

/// Daemon sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard (= worker) count.
    pub shards: usize,
    /// Per-shard queue bound; admission rejects beyond it.
    pub queue_bound: usize,
    /// The retry hint carried by rejection responses.
    pub retry_after_ms: u64,
    /// Generation-noise setting of the shared NL generator (pipeline-level:
    /// requests cannot override it). Defaults to off so that serving is
    /// byte-stable by default.
    pub noise: NoiseConfig,
    /// Start with workers parked (tests fill queues deterministically, then
    /// call [`Daemon::resume`]).
    pub paused: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            shards: 2,
            queue_bound: 64,
            retry_after_ms: 5,
            noise: NoiseConfig::off(),
            paused: false,
        }
    }
}

impl ServeConfig {
    pub fn with_shards(shards: usize) -> ServeConfig {
        ServeConfig { shards: shards.max(1), ..ServeConfig::default() }
    }
}

// ---------------------------------------------------------------------------
// The daemon.
// ---------------------------------------------------------------------------

struct Job {
    request: GenRequest,
    enqueued: Instant,
    reply: mpsc::Sender<GenResponse>,
}

/// One shard's dual-priority bounded queue.
#[derive(Default)]
struct ShardQueue {
    high: VecDeque<Job>,
    normal: VecDeque<Job>,
}

impl ShardQueue {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    fn is_empty(&self) -> bool {
        self.high.is_empty() && self.normal.is_empty()
    }

    fn push(&mut self, job: Job) {
        if job.request.spec.priority > 0 {
            self.high.push_back(job);
        } else {
            self.normal.push_back(job);
        }
    }

    fn pop(&mut self) -> Option<Job> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }
}

struct Shard {
    queue: Mutex<ShardQueue>,
    ready: Condvar,
    pool: Mutex<Vec<GenScratch>>,
    tel: TelemetryBank,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            queue: Mutex::new(ShardQueue::default()),
            ready: Condvar::new(),
            pool: Mutex::new(Vec::new()),
            tel: TelemetryBank::new(),
        }
    }
}

/// Recovers the guard from a poisoned mutex: the protected state (a queue
/// of jobs, a pool of scratch buffers) stays structurally sound across a
/// worker panic, and stalling every other client on a poisoned lock would
/// turn one bad request into a full outage.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct Inner {
    cfg: ServeConfig,
    pipeline: UctrPipeline,
    qa_base: UctrConfig,
    verification_base: UctrConfig,
    shards: Vec<Shard>,
    next_shard: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    samples: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    stolen: AtomicU64,
    shutdown: AtomicBool,
}

/// The generation daemon: sharded bounded queues in front of one shared
/// [`UctrPipeline`]. See the module docs for the design contract.
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Daemon {
    /// Builds the daemon (one shared pipeline, `cfg.shards` shards) and —
    /// unless `cfg.paused` — spawns the workers.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Daemon> {
        let cfg = ServeConfig { shards: cfg.shards.max(1), ..cfg };
        let qa_base = UctrConfig { noise: cfg.noise, ..UctrConfig::qa() };
        let verification_base = UctrConfig { noise: cfg.noise, ..UctrConfig::verification() };
        let pipeline = UctrPipeline::new(qa_base.clone());
        let shards = (0..cfg.shards).map(|_| Shard::new()).collect();
        let paused = cfg.paused;
        let daemon = Daemon {
            inner: Arc::new(Inner {
                cfg,
                pipeline,
                qa_base,
                verification_base,
                shards,
                next_shard: AtomicUsize::new(0),
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                samples: AtomicU64::new(0),
                pool_hits: AtomicU64::new(0),
                pool_misses: AtomicU64::new(0),
                stolen: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            }),
            workers: Mutex::new(Vec::new()),
        };
        if !paused {
            daemon.resume()?;
        }
        Ok(daemon)
    }

    /// Spawns the worker threads (no-op when they are already running).
    /// Paused daemons use this after tests have staged their queues.
    pub fn resume(&self) -> std::io::Result<()> {
        let mut workers = lock(&self.workers);
        if !workers.is_empty() {
            return Ok(());
        }
        for me in 0..self.inner.shards.len() {
            let inner = Arc::clone(&self.inner);
            let handle = thread::Builder::new()
                .name(format!("uctr-serve-{me}"))
                .spawn(move || worker_loop(&inner, me))?;
            workers.push(handle);
        }
        Ok(())
    }

    /// Queues a generate request. `Ok` carries the receiver the worker's
    /// response arrives on; `Err` is an immediate admission verdict —
    /// nothing was buffered.
    pub fn submit(&self, request: GenRequest) -> Result<mpsc::Receiver<GenResponse>, SubmitError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::Invalid("daemon is shutting down".into()));
        }
        if request.op != "generate" {
            return Err(SubmitError::Invalid(format!("op `{}` cannot be queued", request.op)));
        }
        if let Err(e) = inner.request_config(&request.spec) {
            return Err(SubmitError::Invalid(e));
        }
        let shard_ix = inner.next_shard.fetch_add(1, Ordering::Relaxed) % inner.shards.len();
        let shard = &inner.shards[shard_ix];
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock(&shard.queue);
            if q.len() >= inner.cfg.queue_bound {
                drop(q);
                inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Rejected { retry_after_ms: inner.cfg.retry_after_ms });
            }
            q.push(Job { request, enqueued: Instant::now(), reply: tx });
        }
        shard.ready.notify_one();
        inner.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(rx)
    }

    /// Serves one already-parsed request to completion (the wire handler
    /// and in-process callers share this path).
    pub fn dispatch(&self, request: GenRequest) -> GenResponse {
        let id = request.id;
        match request.op.as_str() {
            "generate" => match self.submit(request) {
                Ok(rx) => match rx.recv() {
                    Ok(response) => response,
                    Err(_) => GenResponse::error(id, "daemon shut down before completion"),
                },
                Err(e) => e.into_response(id),
            },
            "stats" => {
                let mut r = GenResponse::base(id, "ok");
                r.stats = Some(self.stats());
                r
            }
            other => GenResponse::error(id, &format!("unknown op `{other}`")),
        }
    }

    /// A live snapshot: admission/completion counters plus every shard's
    /// telemetry merged into one [`PipelineReport`].
    pub fn stats(&self) -> ServeStats {
        let inner = &self.inner;
        let merged = TelemetryBank::new();
        for shard in &inner.shards {
            merged.merge(&shard.tel);
        }
        ServeStats {
            shards: inner.shards.len() as u64,
            queue_bound: inner.cfg.queue_bound as u64,
            requests_admitted: inner.admitted.load(Ordering::Relaxed),
            requests_rejected: inner.rejected.load(Ordering::Relaxed),
            requests_completed: inner.completed.load(Ordering::Relaxed),
            requests_failed: inner.failed.load(Ordering::Relaxed),
            samples_generated: inner.samples.load(Ordering::Relaxed),
            pool_hits: inner.pool_hits.load(Ordering::Relaxed),
            pool_misses: inner.pool_misses.load(Ordering::Relaxed),
            requests_stolen: inner.stolen.load(Ordering::Relaxed),
            queue_depths: inner.shards.iter().map(|s| lock(&s.queue).len() as u64).collect(),
            report: merged.report(inner.shards.len()),
        }
    }

    /// Drains the queues, stops the workers, and joins them. Requests
    /// submitted before the call still complete; later submissions are
    /// refused.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            shard.ready.notify_all();
        }
        let handles = std::mem::take(&mut *lock(&self.workers));
        for handle in handles {
            let _ = handle.join();
        }
    }

    // -- TCP front-end ------------------------------------------------------

    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and spawns the accept loop.
    /// Returns the bound address (with the OS-assigned port resolved).
    pub fn spawn_listener(
        self: &Arc<Daemon>,
        addr: &str,
    ) -> std::io::Result<(SocketAddr, thread::JoinHandle<()>)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let daemon = Arc::clone(self);
        let handle = thread::Builder::new()
            .name("uctr-serve-accept".into())
            .spawn(move || daemon.accept_loop(listener))?;
        Ok((local, handle))
    }

    /// Blocking accept loop (the `uctr-served` bin runs this on its main
    /// thread). One thread per connection; connections are independent.
    pub fn accept_loop(self: Arc<Daemon>, listener: TcpListener) {
        for stream in listener.incoming() {
            if self.inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            let Ok(stream) = stream else { continue };
            let daemon = Arc::clone(&self);
            let _ = thread::Builder::new()
                .name("uctr-serve-conn".into())
                .spawn(move || daemon.handle_conn(stream));
        }
    }

    fn handle_conn(self: Arc<Daemon>, mut stream: TcpStream) {
        loop {
            let frame = match read_frame(&mut stream, MAX_FRAME_BYTES) {
                Ok(Some(frame)) => frame,
                Ok(None) | Err(_) => return,
            };
            let parsed = std::str::from_utf8(&frame)
                .ok()
                .and_then(|text| serde_json::from_str::<GenRequest>(text).ok());
            let response = match parsed {
                Some(request) => self.dispatch(request),
                None => GenResponse::error(0, "malformed request frame"),
            };
            let Ok(json) = serde_json::to_string(&response) else { return };
            if write_frame(&mut stream, json.as_bytes()).is_err() {
                return;
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    /// Resolves a request spec into the per-request pipeline config.
    fn request_config(&self, spec: &RequestSpec) -> Result<UctrConfig, String> {
        let mut cfg = match spec.task.as_str() {
            "qa" => self.qa_base.clone(),
            "verification" => self.verification_base.clone(),
            other => {
                return Err(format!("unknown task `{other}` (expected `qa` or `verification`)"))
            }
        };
        cfg.seed = spec.seed;
        if spec.samples_per_table > 0 {
            cfg.samples_per_table = spec.samples_per_table.min(MAX_SAMPLES_PER_TABLE);
        }
        Ok(cfg)
    }

    /// Pops the next job: own shard first (high before normal), then a
    /// steal sweep over the other shards in ring order.
    fn take_job(&self, me: usize) -> Option<Job> {
        if let Some(job) = lock(&self.shards[me].queue).pop() {
            return Some(job);
        }
        let n = self.shards.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(job) = lock(&self.shards[victim].queue).pop() {
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Parks the worker on its own shard's condvar for up to [`STEAL_POLL`].
    fn idle_wait(&self, me: usize) {
        let shard = &self.shards[me];
        let guard = lock(&shard.queue);
        if !guard.is_empty() {
            return;
        }
        let _ = match shard.ready.wait_timeout(guard, STEAL_POLL) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
    }

    /// Runs one job to completion on worker `me` and sends the response.
    fn process(&self, me: usize, job: Job) {
        let shard = &self.shards[me];
        let queue_ns = elapsed_ns(&job.enqueued);
        // Warm scratch from this worker's shard pool (thread locality
        // beats pairing scratch with the job's home shard).
        let mut scratch = match lock(&shard.pool).pop() {
            Some(scratch) => {
                self.pool_hits.fetch_add(1, Ordering::Relaxed);
                scratch
            }
            None => {
                self.pool_misses.fetch_add(1, Ordering::Relaxed);
                GenScratch::default()
            }
        };
        let service_started = Instant::now();
        let outcome = self.run(&job.request, &shard.tel, &mut scratch);
        let service_ns = elapsed_ns(&service_started);
        {
            let mut pool = lock(&shard.pool);
            if pool.len() < POOL_CAP {
                pool.push(scratch);
            }
        }
        let mut response = match outcome {
            Ok(samples) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                self.samples.fetch_add(samples.len() as u64, Ordering::Relaxed);
                let mut r = GenResponse::base(job.request.id, "ok");
                r.samples = samples;
                r
            }
            Err(message) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                GenResponse::error(job.request.id, &message)
            }
        };
        response.queue_ns = queue_ns;
        response.service_ns = service_ns;
        shard.tel.time(Timer::Request, job.enqueued.elapsed());
        // A vanished client (dropped receiver) is not a daemon error.
        let _ = job.reply.send(response);
    }

    /// Parses the tables and runs the pipeline under the request config.
    fn run(
        &self,
        request: &GenRequest,
        tel: &TelemetryBank,
        scratch: &mut GenScratch,
    ) -> Result<Vec<Sample>, String> {
        let cfg = self.request_config(&request.spec)?;
        let mut inputs = Vec::with_capacity(request.tables.len());
        for wire in &request.tables {
            inputs.push(wire.to_input()?);
        }
        let mut out = Vec::new();
        self.pipeline.generate_request(&cfg, &inputs, &mut out, tel, scratch);
        Ok(out)
    }
}

fn elapsed_ns(started: &Instant) -> u64 {
    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

fn worker_loop(inner: &Inner, me: usize) {
    loop {
        if let Some(job) = inner.take_job(me) {
            inner.process(me, job);
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        inner.idle_wait(me);
    }
}

// ---------------------------------------------------------------------------
// Wire framing and the client.
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame (4-byte big-endian length + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| Error::new(ErrorKind::InvalidInput, "frame exceeds the u32 length prefix"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF (connection closed between
/// frames); EOF inside a frame is an error, as is a length above `max`.
pub fn read_frame(r: &mut impl Read, max: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::new(ErrorKind::UnexpectedEof, "connection closed mid-header"))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A minimal blocking client for the wire protocol (one request in flight
/// per connection).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, request: &GenRequest) -> Result<GenResponse, String> {
        let json = serde_json::to_string(request).map_err(|e| e.to_string())?;
        write_frame(&mut self.stream, json.as_bytes()).map_err(|e| e.to_string())?;
        let frame = read_frame(&mut self.stream, MAX_FRAME_BYTES)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| "connection closed before a response arrived".to_string())?;
        let text = std::str::from_utf8(&frame).map_err(|e| e.to_string())?;
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_tables() -> Vec<WireTable> {
        vec![WireTable {
            title: "Teams".into(),
            rows: vec![
                vec!["team".into(), "city".into(), "points".into(), "wins".into()],
                vec!["Reds".into(), "Oslo".into(), "77".into(), "21".into()],
                vec!["Blues".into(), "Lima".into(), "64".into(), "18".into()],
                vec!["Greens".into(), "Kyiv".into(), "81".into(), "24".into()],
                vec!["Golds".into(), "Quito".into(), "59".into(), "15".into()],
            ],
            paragraph: None,
            topic: "sports".into(),
        }]
    }

    fn recv(rx: Result<mpsc::Receiver<GenResponse>, SubmitError>, what: &str) -> GenResponse {
        match rx {
            Ok(rx) => match rx.recv() {
                Ok(response) => response,
                Err(e) => panic!("{what}: worker dropped the reply channel: {e}"),
            },
            Err(e) => panic!("{what}: submission refused: {e:?}"),
        }
    }

    #[test]
    fn frame_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap_or_else(|e| panic!("write_frame: {e}"));
        write_frame(&mut buf, b"").unwrap_or_else(|e| panic!("write_frame: {e}"));
        let mut cursor = std::io::Cursor::new(buf);
        let first =
            read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap_or_else(|e| panic!("read_frame: {e}"));
        assert_eq!(first.as_deref(), Some(&b"hello"[..]));
        let second =
            read_frame(&mut cursor, MAX_FRAME_BYTES).unwrap_or_else(|e| panic!("read_frame: {e}"));
        assert_eq!(second.as_deref(), Some(&b""[..]));
        let eof = read_frame(&mut cursor, MAX_FRAME_BYTES)
            .unwrap_or_else(|e| panic!("read_frame at EOF: {e}"));
        assert!(eof.is_none(), "clean EOF must be None");
    }

    #[test]
    fn frame_guards_against_oversize_and_truncation() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"0123456789").unwrap_or_else(|e| panic!("write_frame: {e}"));
        // Cap below the frame size: refused before allocation.
        let mut cursor = std::io::Cursor::new(buf.clone());
        assert!(read_frame(&mut cursor, 4).is_err());
        // Truncated payload: UnexpectedEof, not a silent short frame.
        let mut truncated = std::io::Cursor::new(buf[..8].to_vec());
        assert!(read_frame(&mut truncated, MAX_FRAME_BYTES).is_err());
        // Truncated header: also an error (but empty input is clean EOF).
        let mut header_cut = std::io::Cursor::new(vec![0u8, 0, 0]);
        assert!(read_frame(&mut header_cut, MAX_FRAME_BYTES).is_err());
    }

    #[test]
    fn wire_table_round_trips() {
        let wire = &wire_tables()[0];
        let input = wire.to_input().unwrap_or_else(|e| panic!("to_input: {e}"));
        assert_eq!(input.table.n_rows(), 4);
        assert_eq!(input.table.n_cols(), 4);
        assert_eq!(input.topic, "sports");
        let back = WireTable::from_input(&input);
        assert_eq!(&back, wire);
        // Ragged rows are refused with the table named.
        let mut bad = wire.clone();
        bad.rows[2].pop();
        let err = match bad.to_input() {
            Err(e) => e,
            Ok(_) => panic!("ragged wire table must be rejected"),
        };
        assert!(err.contains("Teams"), "{err}");
    }

    #[test]
    fn request_json_round_trips() {
        let request = GenRequest::generate(7, RequestSpec::qa(42), wire_tables());
        let json = serde_json::to_string(&request).unwrap_or_else(|e| panic!("serialize: {e}"));
        let back: GenRequest =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("deserialize: {e}"));
        assert_eq!(back, request);
    }

    #[test]
    fn shard_queue_orders_by_priority() {
        let mut q = ShardQueue::default();
        let job = |id: u64, priority: u8| {
            let (tx, _rx) = mpsc::channel();
            let mut spec = RequestSpec::qa(1);
            spec.priority = priority;
            // The receiver is dropped; these jobs are never processed.
            std::mem::forget(_rx);
            Job {
                request: GenRequest::generate(id, spec, Vec::new()),
                enqueued: Instant::now(),
                reply: tx,
            }
        };
        q.push(job(1, 0));
        q.push(job(2, 1));
        q.push(job(3, 0));
        q.push(job(4, 1));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.request.id).collect();
        assert_eq!(order, vec![2, 4, 1, 3], "high priority first, FIFO within a class");
    }

    #[test]
    fn submit_validates_op_and_task() {
        let daemon = Daemon::start(ServeConfig { paused: true, ..ServeConfig::default() })
            .unwrap_or_else(|e| panic!("daemon start: {e}"));
        let stats_req = GenRequest::stats(1);
        assert!(matches!(daemon.submit(stats_req), Err(SubmitError::Invalid(_))));
        let mut bad_task = GenRequest::generate(2, RequestSpec::qa(1), Vec::new());
        bad_task.spec.task = "summarization".into();
        let err = match daemon.submit(bad_task) {
            Err(SubmitError::Invalid(e)) => e,
            other => panic!("unknown task must be invalid, got {other:?}"),
        };
        assert!(err.contains("summarization"), "{err}");
    }

    #[test]
    fn backpressure_rejects_at_the_bound_and_drains_after_resume() {
        let daemon = Daemon::start(ServeConfig {
            shards: 1,
            queue_bound: 2,
            retry_after_ms: 7,
            paused: true,
            ..ServeConfig::default()
        })
        .unwrap_or_else(|e| panic!("daemon start: {e}"));
        let request = GenRequest::generate(1, RequestSpec::qa(5), wire_tables());
        let rx1 = daemon.submit(request.clone());
        let rx2 = daemon.submit(request.clone());
        assert!(rx1.is_ok() && rx2.is_ok(), "bound admits exactly queue_bound requests");
        // Third submission hits the bound: immediate rejection with the
        // configured retry hint, nothing buffered.
        match daemon.submit(request.clone()) {
            Err(SubmitError::Rejected { retry_after_ms }) => assert_eq!(retry_after_ms, 7),
            other => panic!("expected rejection at the bound, got {other:?}"),
        }
        assert_eq!(daemon.stats().requests_rejected, 1);
        assert_eq!(daemon.stats().queue_depths, vec![2]);
        daemon.resume().unwrap_or_else(|e| panic!("resume: {e}"));
        let a = recv(rx1, "first queued request");
        let b = recv(rx2, "second queued request");
        assert!(a.is_ok() && b.is_ok());
        assert!(!a.samples.is_empty());
        // Identical request bytes ⇒ byte-identical samples.
        assert_eq!(a.samples, b.samples);
        // The rejected request succeeds on retry and reproduces the same
        // bytes again.
        let c = recv(daemon.submit(request), "retried request");
        assert_eq!(c.samples, a.samples);
        let stats = daemon.stats();
        assert_eq!(stats.requests_completed, 3);
        assert_eq!(stats.samples_generated % 3, 0);
        let request_hist = stats
            .report
            .timing("request")
            .unwrap_or_else(|| panic!("stats must carry the request histogram"));
        assert_eq!(request_hist.count, 3);
        assert!(request_hist.quantile_ns(0.99) > 0);
        daemon.shutdown();
    }

    #[test]
    fn response_id_echoes_and_ids_do_not_change_bytes() {
        let daemon = Daemon::start(ServeConfig::with_shards(1))
            .unwrap_or_else(|e| panic!("daemon start: {e}"));
        let a =
            daemon.dispatch(GenRequest::generate(11, RequestSpec::verification(3), wire_tables()));
        let b =
            daemon.dispatch(GenRequest::generate(99, RequestSpec::verification(3), wire_tables()));
        assert_eq!(a.id, 11);
        assert_eq!(b.id, 99);
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(a.samples, b.samples, "the correlation id is outside the RNG namespace");
        // Different seeds are different namespaces.
        let c =
            daemon.dispatch(GenRequest::generate(12, RequestSpec::verification(4), wire_tables()));
        assert_ne!(a.samples, c.samples, "distinct seeds must diverge");
        daemon.shutdown();
    }

    #[test]
    fn samples_per_table_override_is_capped() {
        let daemon = Daemon::start(ServeConfig::with_shards(1))
            .unwrap_or_else(|e| panic!("daemon start: {e}"));
        let mut spec = RequestSpec::qa(5);
        spec.samples_per_table = 1;
        let small = daemon.dispatch(GenRequest::generate(1, spec.clone(), wire_tables()));
        spec.samples_per_table = usize::MAX;
        let capped = daemon.dispatch(GenRequest::generate(2, spec, wire_tables()));
        assert!(small.is_ok() && capped.is_ok());
        assert!(small.samples.len() < capped.samples.len());
        // The cap kept the huge override finite (identical to an explicit
        // MAX_SAMPLES_PER_TABLE request).
        let mut max_spec = RequestSpec::qa(5);
        max_spec.samples_per_table = MAX_SAMPLES_PER_TABLE;
        let max = daemon.dispatch(GenRequest::generate(3, max_spec, wire_tables()));
        assert_eq!(capped.samples, max.samples);
        daemon.shutdown();
    }

    #[test]
    fn tcp_round_trip_matches_in_process_dispatch() {
        let daemon = Arc::new(
            Daemon::start(ServeConfig::with_shards(2))
                .unwrap_or_else(|e| panic!("daemon start: {e}")),
        );
        let (addr, _accept) =
            daemon.spawn_listener("127.0.0.1:0").unwrap_or_else(|e| panic!("listener: {e}"));
        let expected = daemon.dispatch(GenRequest::generate(5, RequestSpec::qa(21), wire_tables()));
        let mut client = Client::connect(addr).unwrap_or_else(|e| panic!("client connect: {e}"));
        let over_wire = client
            .request(&GenRequest::generate(5, RequestSpec::qa(21), wire_tables()))
            .unwrap_or_else(|e| panic!("wire request: {e}"));
        assert!(over_wire.is_ok(), "wire status: {} {}", over_wire.status, over_wire.message);
        assert_eq!(over_wire.samples, expected.samples);
        let stats =
            client.request(&GenRequest::stats(6)).unwrap_or_else(|e| panic!("stats request: {e}"));
        let snapshot = match stats.stats {
            Some(s) => s,
            None => panic!("stats response must carry a snapshot"),
        };
        assert!(snapshot.requests_completed >= 2);
        assert_eq!(snapshot.shards, 2);
        daemon.shutdown();
    }
}
