//! # uctr — Unsupervised Complex Tabular Reasoning
//!
//! The paper's primary contribution: a unified framework that synthesizes
//! labeled tabular-reasoning data from **unlabeled tables** by sampling
//! program templates (SQL / logical forms / arithmetic expressions),
//! executing them with the Program-Executor, converting them to natural
//! language with the NL-Generator, and composing joint table-text samples
//! with the Table-To-Text / Text-To-Table operators (Li et al., ICDE 2023).
//!
//! ```
//! use tabular::Table;
//! use uctr::{TableWithContext, UctrConfig, UctrPipeline};
//!
//! let table = Table::from_strings("Teams", &[
//!     vec!["team", "city", "points", "wins"],
//!     vec!["Reds", "Oslo", "77", "21"],
//!     vec!["Blues", "Lima", "64", "18"],
//!     vec!["Greens", "Kyiv", "81", "24"],
//! ]).unwrap();
//! let pipeline = UctrPipeline::new(UctrConfig::verification());
//! let samples = pipeline.generate(&[TableWithContext::bare(table)]);
//! assert!(!samples.is_empty());
//! ```

pub mod analysis;
pub mod autogen;
pub mod mining;
pub mod mqaqg;
pub mod pipeline;
pub mod program;
pub mod sample;
pub mod serve;
pub mod telemetry;
pub mod templates;

pub use analysis::{
    analyze_text, AnalyzedTemplate, TemplateDiagnostic, TemplateDiagnostics, PARSE_ERROR,
};
pub use autogen::{extend_bank_auto, AutoGenerator, ProgramDistribution};
pub use mining::{mined_bank, MergeRecord, MineOutcome, Miner, MinerStats};
pub use mqaqg::{generate_mqaqg, MqaQgConfig};
pub use pipeline::{TableWithContext, TaskKind, UctrConfig, UctrPipeline};
pub use program::{AnyTemplate, GenScratch, InstantiatedProgram, ProgramOutput, ProgramTemplate};
pub use sample::{AnswerKind, Dataset, EvidenceType, Label, ProgramKind, Sample, Verdict};
pub use serve::{
    Client, Daemon, GenRequest, GenResponse, RequestSpec, ServeConfig, ServeStats, SubmitError,
    WireTable,
};
pub use telemetry::{
    DiscardReport, KindReport, KindSlot, PipelineReport, SourceReport, TelemetryBank, TimingReport,
};
pub use templates::{
    AddOutcome, FeasibleSet, TemplateBank, BUILTIN_ARITH, BUILTIN_LOGIC, BUILTIN_SQL,
};
// Re-exported so analysis consumers (e.g. the xtask auditor) need only a
// `uctr` dependency.
pub use tabular::{SchemaRequirement, TemplateAnalysis, TemplateIssue};
