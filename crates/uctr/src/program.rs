//! The unified program layer: one trait-object interface over the three
//! executor crates (paper §II-C's reasoning-program types).
//!
//! Before this layer existed the pipeline had one hand-written driver per
//! program kind (`run_sql` / `run_arith` / `run_logic`), each repeating the
//! same telemetry funnel. [`ProgramTemplate`] and [`InstantiatedProgram`]
//! factor that shape out:
//!
//! * a [`ProgramTemplate`] can **instantiate** itself against a table
//!   (sampling holes from the table via a shared [`ExecContext`]),
//! * the resulting [`InstantiatedProgram`] can **execute** (unless the
//!   executor already ran during instantiation — see
//!   [`InstantiatedProgram::pre_executed`]), **verbalize** through the
//!   [`NlGenerator`], and finally surrender its [`ProgramOutput`]: the gold
//!   label, the serialized program, the answer kind and the highlighted
//!   cells that downstream sample builders (table splitting / expansion)
//!   need.
//!
//! Every fallible step reports a unified [`Discard`] reason, so the
//! telemetry funnel (Attempted → Instantiated → Executed → Accepted) is
//! driven once, generically, in `pipeline::run_program`.
//!
//! Adding a fourth program kind means implementing these two traits plus a
//! [`KindSlot`] — see `DESIGN.md` for the walkthrough.

use crate::sample::{AnswerKind, Label, ProgramKind, Verdict};
use crate::telemetry::{Discard, KindSlot};
use arithexpr::{AeOutcome, AeProgram, AeScratch, AeTemplate};
use logicforms::{LfExpr, LfScratch, LfTemplate};
use nlgen::{NlGenerator, NlScratch, ProgramRef};
use rand::rngs::StdRng;
use rand::Rng;
use sqlexec::{SelectStmt, SqlScratch, SqlTemplate};
use tabular::{ExecContext, Table, TemplateAnalysis};

/// Reusable per-worker buffers for the sample hot path.
///
/// One `GenScratch` lives per generation worker (and one per sequential
/// run): instantiation retries, candidate filtering, NL realization and the
/// pipeline's own sample builders all write into these buffers instead of
/// allocating per sample. A default-constructed scratch is always valid —
/// every buffer is cleared before use, never read.
#[derive(Debug, Clone, Default)]
pub struct GenScratch {
    /// SQL template sampling buffers.
    pub sql: SqlScratch,
    /// Logical-form template sampling buffers.
    pub lf: LfScratch,
    /// Arithmetic template sampling buffers.
    pub ae: AeScratch,
    /// NL candidate + n-gram scoring buffers.
    pub nl: NlScratch,
    /// Row-index buffer (table splitting / highlighted-row scans).
    pub rows: Vec<usize>,
    /// Column/candidate index buffer (text-only alternative sampling).
    pub cols: Vec<usize>,
    /// String buffer for cell rendering and comparisons.
    pub buf: String,
    /// Table-To-Text buffers (row verbalization + faithfulness check).
    pub text: textops::TextScratch,
}

/// `Display`-renders into a string sized for typical serialized programs,
/// avoiding the growth reallocations of `to_string()` on hot paths.
fn render(d: &impl std::fmt::Display, cap: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(cap);
    let _ = write!(s, "{d}");
    s
}

/// Everything the pipeline carries away from one successful program run.
#[derive(Debug, Clone)]
pub struct ProgramOutput {
    /// The gold label (answer text for QA, verdict for verification).
    pub label: Label,
    /// The serialized program that produced the label.
    pub program: ProgramKind,
    /// The answer-type bucket the sample falls into (paper Table VI).
    pub answer_kind: AnswerKind,
    /// Table cells the execution touched; table splitting and expansion
    /// filter on these.
    pub highlighted: Vec<(usize, usize)>,
}

/// A program template of any kind, instantiable against a table.
///
/// Implemented by [`sqlexec::SqlTemplate`], [`logicforms::LfTemplate`] and
/// [`arithexpr::AeTemplate`]; the pipeline only sees `dyn ProgramTemplate`.
pub trait ProgramTemplate: Send + Sync {
    /// The telemetry slot this template's attempts are counted under.
    fn kind(&self) -> KindSlot;

    /// The dedup signature (unprefixed — the bank prefixes by kind so that
    /// signatures never collide across kinds).
    fn signature(&self) -> String;

    /// Statically typechecks the template without a table and computes the
    /// weakest [`tabular::SchemaRequirement`] a table must satisfy for
    /// [`ProgramTemplate::try_instantiate`] to have any chance of
    /// succeeding. Soundness contract: a reported issue means
    /// instantiation fails on every table under every RNG stream; an
    /// unsatisfied requirement means it fails on that table under every
    /// RNG stream (see `crate::analysis`).
    fn analyze(&self) -> TemplateAnalysis;

    /// The canonical form (unprefixed, like [`ProgramTemplate::signature`]):
    /// holes alpha-renamed into first-use order, commutative operands
    /// sorted, executor-faithful identities applied. Soundness contract:
    /// two same-kind templates with equal canonical forms produce
    /// *identical* outputs under identical RNG streams on every table —
    /// the per-crate `canon` modules only apply rewrites that provably
    /// preserve the instantiation draw stream, and `crate::analysis`'s
    /// differential harness re-verifies every merge the miner performs.
    fn canonicalize(&self) -> String;

    /// Samples the template's holes from `table`, returning a runnable
    /// program. All table scans go through the shared `ctx` caches and all
    /// per-attempt buffers come from `scratch`. The RNG draw sequence is
    /// part of the pipeline's determinism contract: implementations must
    /// consume draws exactly as the pre-trait per-kind drivers did.
    fn try_instantiate(
        &self,
        table: &Table,
        ctx: &ExecContext,
        rng: &mut StdRng,
        scratch: &mut GenScratch,
    ) -> Result<Box<dyn InstantiatedProgram>, Discard>;
}

/// A fully-instantiated program: executable, verbalizable, and finally
/// convertible into a [`ProgramOutput`].
pub trait InstantiatedProgram {
    /// True when instantiation already executed the program (arithmetic
    /// templates execute while sampling, to validate the binding). The
    /// pipeline then skips [`InstantiatedProgram::execute`] and its timer.
    fn pre_executed(&self) -> bool {
        false
    }

    /// Executes against the table, storing the result internally. Includes
    /// the paper's §IV-C result filters (empty results / empty answers are
    /// discards, not successes). Kernel buffers come from `scratch`.
    fn execute(
        &mut self,
        table: &Table,
        ctx: &ExecContext,
        scratch: &mut GenScratch,
    ) -> Result<(), Discard>;

    /// Verbalizes the program into a question / claim. Candidate realization
    /// and n-gram scoring run inside `scratch`'s NL buffers.
    fn verbalize(
        &self,
        generator: &NlGenerator,
        rng: &mut StdRng,
        scratch: &mut GenScratch,
    ) -> String;

    /// Surrenders the run's output. Called once, after a successful
    /// execute; the implementation may leave itself empty behind.
    fn output(&mut self) -> ProgramOutput;
}

// --- SQL ---------------------------------------------------------------

struct SqlProgram {
    stmt: SelectStmt,
    answer: String,
    highlighted: Vec<(usize, usize)>,
}

impl ProgramTemplate for SqlTemplate {
    fn kind(&self) -> KindSlot {
        KindSlot::Sql
    }

    fn signature(&self) -> String {
        SqlTemplate::signature(self)
    }

    fn analyze(&self) -> TemplateAnalysis {
        sqlexec::analysis::analyze(self)
    }

    fn canonicalize(&self) -> String {
        sqlexec::canon::canonical_form(self)
    }

    fn try_instantiate(
        &self,
        table: &Table,
        ctx: &ExecContext,
        rng: &mut StdRng,
        scratch: &mut GenScratch,
    ) -> Result<Box<dyn InstantiatedProgram>, Discard> {
        let stmt = self
            .try_instantiate_in_with(table, ctx, rng, &mut scratch.sql)
            .map_err(Discard::from)?;
        Ok(Box::new(SqlProgram { stmt, answer: String::new(), highlighted: Vec::new() }))
    }
}

impl InstantiatedProgram for SqlProgram {
    fn execute(
        &mut self,
        table: &Table,
        ctx: &ExecContext,
        scratch: &mut GenScratch,
    ) -> Result<(), Discard> {
        let result = sqlexec::execute_in_with(&self.stmt, table, ctx, &mut scratch.sql.kern)
            .map_err(Discard::from)?;
        if result.is_empty() {
            // paper §IV-C: discard empty-result programs
            return Err(Discard::EmptyResult);
        }
        let answer = result.answer_text();
        if answer.is_empty() {
            return Err(Discard::EmptyAnswer);
        }
        self.answer = answer;
        self.highlighted = result.highlighted;
        Ok(())
    }

    fn verbalize(
        &self,
        generator: &NlGenerator,
        rng: &mut StdRng,
        scratch: &mut GenScratch,
    ) -> String {
        generator.verbalize_with(ProgramRef::Sql(&self.stmt), rng, &mut scratch.nl)
    }

    fn output(&mut self) -> ProgramOutput {
        let answer_kind = if self.stmt.items.iter().any(|i| {
            matches!(i, sqlexec::SelectItem::Aggregate { func: sqlexec::AggFunc::Count, .. })
        }) {
            AnswerKind::Count
        } else if self.stmt.items.iter().any(|i| {
            matches!(
                i,
                sqlexec::SelectItem::Aggregate { .. }
                    | sqlexec::SelectItem::Expr(sqlexec::Expr::Binary { .. })
            )
        }) {
            AnswerKind::Arithmetic
        } else {
            AnswerKind::Span
        };
        ProgramOutput {
            label: Label::Answer(std::mem::take(&mut self.answer)),
            program: ProgramKind::Sql(render(&self.stmt, 96)),
            answer_kind,
            highlighted: std::mem::take(&mut self.highlighted),
        }
    }
}

// --- Logical forms -----------------------------------------------------

struct LogicProgram {
    expr: LfExpr,
    truth: bool,
    highlighted: Vec<(usize, usize)>,
}

impl ProgramTemplate for LfTemplate {
    fn kind(&self) -> KindSlot {
        KindSlot::Logic
    }

    fn signature(&self) -> String {
        LfTemplate::signature(self)
    }

    fn analyze(&self) -> TemplateAnalysis {
        logicforms::analysis::analyze(self)
    }

    fn canonicalize(&self) -> String {
        logicforms::canon::canonical_form(self)
    }

    fn try_instantiate(
        &self,
        table: &Table,
        ctx: &ExecContext,
        rng: &mut StdRng,
        scratch: &mut GenScratch,
    ) -> Result<Box<dyn InstantiatedProgram>, Discard> {
        // Truth-targeted sampling: flip the target first, then sample. The
        // draw order (gen_bool before the template's own draws) is part of
        // the determinism contract.
        let desired = rng.gen_bool(0.5);
        let claim = self
            .try_instantiate_in_with(table, ctx, rng, desired, &mut scratch.lf)
            .map_err(Discard::from)?;
        Ok(Box::new(LogicProgram { expr: claim.expr, truth: claim.truth, highlighted: Vec::new() }))
    }
}

impl InstantiatedProgram for LogicProgram {
    fn execute(
        &mut self,
        table: &Table,
        ctx: &ExecContext,
        scratch: &mut GenScratch,
    ) -> Result<(), Discard> {
        let outcome = logicforms::evaluate_with(&self.expr, table, ctx, &mut scratch.lf.kern)
            .map_err(Discard::from)?;
        self.highlighted = outcome.highlighted;
        Ok(())
    }

    fn verbalize(
        &self,
        generator: &NlGenerator,
        rng: &mut StdRng,
        scratch: &mut GenScratch,
    ) -> String {
        generator.verbalize_with(ProgramRef::Logic(&self.expr), rng, &mut scratch.nl)
    }

    fn output(&mut self) -> ProgramOutput {
        let verdict = if self.truth { Verdict::Supported } else { Verdict::Refuted };
        ProgramOutput {
            label: Label::Verdict(verdict),
            program: ProgramKind::Logic(render(&self.expr, 96)),
            answer_kind: AnswerKind::NotApplicable,
            highlighted: std::mem::take(&mut self.highlighted),
        }
    }
}

// --- Arithmetic --------------------------------------------------------

struct ArithProgram {
    program: AeProgram,
    outcome: AeOutcome,
}

impl ProgramTemplate for AeTemplate {
    fn kind(&self) -> KindSlot {
        KindSlot::Arith
    }

    fn signature(&self) -> String {
        AeTemplate::signature(self)
    }

    fn analyze(&self) -> TemplateAnalysis {
        arithexpr::analysis::analyze(self)
    }

    fn canonicalize(&self) -> String {
        arithexpr::canon::canonical_form(self)
    }

    fn try_instantiate(
        &self,
        table: &Table,
        ctx: &ExecContext,
        rng: &mut StdRng,
        scratch: &mut GenScratch,
    ) -> Result<Box<dyn InstantiatedProgram>, Discard> {
        let inst = self
            .try_instantiate_in_with(table, ctx, rng, &mut scratch.ae)
            .map_err(Discard::from)?;
        Ok(Box::new(ArithProgram { program: inst.program, outcome: inst.outcome }))
    }
}

impl InstantiatedProgram for ArithProgram {
    /// Arithmetic instantiation executes internally to validate the cell
    /// binding, so a successful instantiation is also an execution.
    fn pre_executed(&self) -> bool {
        true
    }

    fn execute(
        &mut self,
        _table: &Table,
        _ctx: &ExecContext,
        _scratch: &mut GenScratch,
    ) -> Result<(), Discard> {
        Ok(())
    }

    fn verbalize(
        &self,
        generator: &NlGenerator,
        rng: &mut StdRng,
        scratch: &mut GenScratch,
    ) -> String {
        generator.verbalize_with(ProgramRef::Arith(&self.program), rng, &mut scratch.nl)
    }

    fn output(&mut self) -> ProgramOutput {
        ProgramOutput {
            label: Label::Answer(render(&self.outcome.answer, 16)),
            program: ProgramKind::Arith(render(&self.program, 96)),
            answer_kind: AnswerKind::Arithmetic,
            highlighted: std::mem::take(&mut self.outcome.highlighted),
        }
    }
}

// --- The kind-erased template ------------------------------------------

/// A template of any kind, stored by value in the unified
/// [`crate::TemplateBank`].
#[derive(Debug, Clone)]
pub enum AnyTemplate {
    Sql(SqlTemplate),
    Logic(LfTemplate),
    Arith(AeTemplate),
}

impl AnyTemplate {
    /// The trait-object view the pipeline runs against.
    pub fn as_program(&self) -> &dyn ProgramTemplate {
        match self {
            AnyTemplate::Sql(t) => t,
            AnyTemplate::Logic(t) => t,
            AnyTemplate::Arith(t) => t,
        }
    }

    pub fn kind(&self) -> KindSlot {
        self.as_program().kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::from_strings(
            "t",
            &[
                vec!["name", "city", "points", "wins"],
                vec!["Reds", "Oslo", "77", "21"],
                vec!["Blues", "Lima", "64", "18"],
                vec!["Greens", "Kyiv", "81", "24"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e}"))
    }

    fn instantiate(
        tpl: &dyn ProgramTemplate,
        t: &Table,
        ctx: &ExecContext,
        rng: &mut StdRng,
    ) -> Box<dyn InstantiatedProgram> {
        tpl.try_instantiate(t, ctx, rng, &mut GenScratch::default())
            .unwrap_or_else(|e| panic!("instantiate: {e:?}"))
    }

    #[test]
    fn sql_template_runs_end_to_end_through_the_trait() {
        let t = table();
        let ctx = ExecContext::new(&t);
        let tpl = SqlTemplate::parse("select c1 from w where c2 = val1")
            .unwrap_or_else(|e| panic!("parse: {e}"));
        let dyn_tpl: &dyn ProgramTemplate = &tpl;
        assert_eq!(dyn_tpl.kind(), KindSlot::Sql);
        let mut rng = StdRng::seed_from_u64(7);
        let mut inst = instantiate(dyn_tpl, &t, &ctx, &mut rng);
        assert!(!inst.pre_executed());
        inst.execute(&t, &ctx, &mut GenScratch::default())
            .unwrap_or_else(|e| panic!("execute: {e:?}"));
        let text = inst.verbalize(&NlGenerator::new(), &mut rng, &mut GenScratch::default());
        assert!(!text.is_empty());
        let out = inst.output();
        assert!(matches!(out.program, ProgramKind::Sql(_)));
        assert!(out.label.as_answer().is_some());
    }

    #[test]
    fn logic_template_reports_verdict_labels() {
        let t = table();
        let ctx = ExecContext::new(&t);
        let tpl = LfTemplate::parse("eq { max { all_rows ; c1 } ; val1 }")
            .unwrap_or_else(|e| panic!("parse: {e}"));
        let dyn_tpl: &dyn ProgramTemplate = &tpl;
        assert_eq!(dyn_tpl.kind(), KindSlot::Logic);
        let mut rng = StdRng::seed_from_u64(3);
        let mut inst = instantiate(dyn_tpl, &t, &ctx, &mut rng);
        inst.execute(&t, &ctx, &mut GenScratch::default())
            .unwrap_or_else(|e| panic!("execute: {e:?}"));
        let out = inst.output();
        assert!(matches!(out.program, ProgramKind::Logic(_)));
        assert!(out.label.as_verdict().is_some());
        assert_eq!(out.answer_kind, AnswerKind::NotApplicable);
        assert!(!out.highlighted.is_empty());
    }

    #[test]
    fn arith_template_is_pre_executed() {
        let t = table();
        let ctx = ExecContext::new(&t);
        let tpl = AeTemplate::parse("table_sum( c1 )").unwrap_or_else(|e| panic!("parse: {e}"));
        let dyn_tpl: &dyn ProgramTemplate = &tpl;
        assert_eq!(dyn_tpl.kind(), KindSlot::Arith);
        let mut rng = StdRng::seed_from_u64(5);
        let mut inst = instantiate(dyn_tpl, &t, &ctx, &mut rng);
        assert!(inst.pre_executed());
        let out = inst.output();
        assert!(matches!(out.program, ProgramKind::Arith(_)));
        assert_eq!(out.answer_kind, AnswerKind::Arithmetic);
    }

    #[test]
    fn instantiation_failures_map_to_unified_discards() {
        // A table with no numeric columns cannot satisfy an arithmetic
        // template.
        let t = Table::from_strings("t", &[vec!["a", "b"], vec!["x", "y"]])
            .unwrap_or_else(|e| panic!("test table: {e}"));
        let ctx = ExecContext::new(&t);
        let tpl = AeTemplate::parse("table_sum( c1 )").unwrap_or_else(|e| panic!("parse: {e}"));
        let mut rng = StdRng::seed_from_u64(1);
        let err = match ProgramTemplate::try_instantiate(
            &tpl,
            &t,
            &ctx,
            &mut rng,
            &mut GenScratch::default(),
        ) {
            Err(e) => e,
            Ok(_) => panic!("instantiation should fail on a numberless table"),
        };
        assert_eq!(err, Discard::ColumnMismatch);
    }

    #[test]
    fn any_template_exposes_its_kind() {
        let sql = AnyTemplate::Sql(
            SqlTemplate::parse("select c1 from w").unwrap_or_else(|e| panic!("sql: {e}")),
        );
        let logic = AnyTemplate::Logic(
            LfTemplate::parse("only { filter_eq { all_rows ; c1 ; val1 } }")
                .unwrap_or_else(|e| panic!("lf: {e}")),
        );
        let arith = AnyTemplate::Arith(
            AeTemplate::parse("table_max( c1 )").unwrap_or_else(|e| panic!("ae: {e}")),
        );
        assert_eq!(sql.kind(), KindSlot::Sql);
        assert_eq!(logic.kind(), KindSlot::Logic);
        assert_eq!(arith.kind(), KindSlot::Arith);
    }
}
