//! Program-template collection (paper §IV-B).
//!
//! The paper mines program templates from three seed corpora — SQUALL for
//! SQL, LOGIC2TEXT for logical forms, FinQA for arithmetic expressions —
//! replacing column names and values with typed placeholders and then
//! running a *filtration procedure* that drops redundant templates (two
//! questions with the same underlying logic abstract to the same template).
//!
//! The reproduction ships the same machinery: [`TemplateBank`] holds the
//! deduplicated templates, supports mining new ones from concrete programs
//! via the per-crate `abstract_*` functions, and provides
//! [`TemplateBank::builtin`] — a bank transcribed from the template
//! families those corpora contain, stratified over the reasoning types the
//! paper enumerates (§II-C).

use crate::analysis::{parse_any, AnalyzedTemplate, TemplateDiagnostics};
use crate::program::{AnyTemplate, ProgramTemplate};
use crate::telemetry::KindSlot;
use arithexpr::AeTemplate;
use logicforms::LfTemplate;
use rand::seq::SliceRandom;
use rand::Rng;
use rustc_hash::{FxHashMap, FxHashSet};
use sqlexec::SqlTemplate;
use std::borrow::Cow;
use tabular::{ExecContext, SchemaRequirement};

/// Number of storable template kinds (`sql` / `logic` / `arith` — the
/// `none` slot holds no templates).
const N_TEMPLATE_KINDS: usize = 3;

/// A deduplicated, kind-stratified collection of program templates.
///
/// All templates live in one `Vec<AnyTemplate>` in insertion order; the
/// `by_kind` index stratifies them so that per-kind sampling
/// ([`TemplateBank::choose`]) stays O(1) and draws the same RNG stream as
/// sampling from a dedicated per-kind vector would.
#[derive(Debug, Clone, Default)]
pub struct TemplateBank {
    templates: Vec<AnyTemplate>,
    /// `requirements[i]` is the statically computed [`SchemaRequirement`]
    /// of `templates[i]` (see `crate::analysis`); the pipeline prefilter
    /// reads it through [`TemplateBank::feasible_set`].
    requirements: Vec<SchemaRequirement>,
    /// Sampling slots into `templates`, stratified by `KindSlot as usize`.
    /// One slot per *admission attempt* that survived signature filtration:
    /// an admitted template gets a slot at its own index, and a canonical
    /// equivalent leaves a slot pointing at its class representative. Since
    /// an equivalent instantiates identically to its representative under
    /// every RNG stream, the slot keeps the bank's draw distribution — and
    /// its mean per-attempt cost — exactly what it would be without
    /// canonical pruning, while `templates` stores each class once.
    by_kind: [Vec<usize>; N_TEMPLATE_KINDS],
    /// The inverted schema index: the *distinct* requirement lattice points
    /// occurring in the bank, in first-seen order. Requirements bucket on
    /// the same point exactly when all their fields (min rows / cols /
    /// per-type cols / addressable cells / needs-number) coincide, so a
    /// context is checked once per point, not once per template.
    points: Vec<SchemaRequirement>,
    /// `point_of[i]` is the index into `points` of `requirements[i]`.
    point_of: Vec<usize>,
    signatures: FxHashSet<String>,
    /// `canon_keys[i]` is the kind-prefixed canonical form of
    /// `templates[i]` — its equivalence-class id (see the per-crate `canon`
    /// modules). Within one bank every class has exactly one member: the
    /// class *representative*, the first-added template of its class.
    canon_keys: Vec<String>,
    /// Canonical key → representative index into `templates`.
    canon: FxHashMap<String, usize>,
}

/// How [`TemplateBank::try_add_classified`] disposed of a well-typed
/// template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddOutcome {
    /// Novel signature *and* novel canonical form; admitted at this index.
    Added(usize),
    /// A template of the same kind with the same exact signature is
    /// already present (the paper's filtration step).
    DuplicateSignature,
    /// Novel signature, but canonically equivalent to `templates[i]` —
    /// same instantiation behavior under every RNG stream, so storing it
    /// would be pure duplication. The representative inherits the sampling
    /// slot the equivalent would have occupied (keeping the draw
    /// distribution identical to the unpruned bank), and the caller gets
    /// the representative's index (the miner records it as a merge to
    /// verify differentially).
    EquivalentTo(usize),
}

impl TemplateBank {
    /// An empty bank.
    pub fn new() -> TemplateBank {
        TemplateBank::default()
    }

    /// The built-in bank (SQUALL / Logic2Text / FinQA-style families).
    ///
    /// Infallible wrapper over [`TemplateBank::builtin_checked`]: the
    /// builtin templates are diagnostic-clean by construction, pinned by a
    /// unit test here and by the `xtask audit-templates` CI gate, so the
    /// error arm is unreachable in a green build.
    pub fn builtin() -> TemplateBank {
        TemplateBank::builtin_checked().unwrap_or_default()
    }

    /// Parses, typechecks and collects the builtin templates, reporting
    /// parse failures and type defects as structured
    /// [`TemplateDiagnostics`] instead of panicking.
    pub fn builtin_checked() -> Result<TemplateBank, TemplateDiagnostics> {
        let mut bank = TemplateBank::new();
        let mut diagnostics = Vec::new();
        for (kind, sources) in [
            (KindSlot::Sql, BUILTIN_SQL),
            (KindSlot::Logic, BUILTIN_LOGIC),
            (KindSlot::Arith, BUILTIN_ARITH),
        ] {
            for t in sources {
                if let Err(d) = bank.try_add_source(kind, t) {
                    diagnostics.extend(d.diagnostics);
                }
            }
        }
        if diagnostics.is_empty() {
            Ok(bank)
        } else {
            Err(TemplateDiagnostics { diagnostics })
        }
    }

    /// Adds a template of any kind; returns false if a template of the
    /// same kind with the same signature is already present (the paper's
    /// filtration step), or if the template is ill-typed (see
    /// [`TemplateBank::try_add`] for the diagnostics). Signatures are
    /// prefixed per kind, so identical surface text in different DSLs
    /// never collides.
    pub fn add(&mut self, t: AnyTemplate) -> bool {
        self.try_add(t).unwrap_or(false)
    }

    /// Adds a template of any kind after statically typechecking it.
    /// `Err` carries the analyzer's diagnostics for an ill-typed template
    /// (one `try_instantiate` would deterministically reject on every
    /// table); `Ok(false)` means a well-typed duplicate — exact signature
    /// *or* canonical equivalent — was filtered (see
    /// [`TemplateBank::try_add_classified`] to tell the two apart).
    pub fn try_add(&mut self, t: AnyTemplate) -> Result<bool, TemplateDiagnostics> {
        self.try_add_classified(t).map(|o| matches!(o, AddOutcome::Added(_)))
    }

    /// [`TemplateBank::try_add`] with the duplicate arm split: exact
    /// signature collisions and canonical-form equivalences report
    /// different [`AddOutcome`]s, and equivalences name the surviving
    /// representative. Survivor state (insertion order, lattice points) is
    /// written exactly as before; an equivalence additionally appends a
    /// sampling slot for the representative (see [`AddOutcome`]), so the
    /// pruned bank's draw distribution matches the unpruned bank's.
    pub fn try_add_classified(
        &mut self,
        t: AnyTemplate,
    ) -> Result<AddOutcome, TemplateDiagnostics> {
        let analyzed = AnalyzedTemplate::of(t.as_program());
        if !analyzed.is_clean() {
            return Err(analyzed.into_diagnostics());
        }
        let sig = format!("{}:{}", kind_prefix(analyzed.kind), analyzed.signature);
        if self.signatures.contains(&sig) {
            return Ok(AddOutcome::DuplicateSignature);
        }
        let key = format!("{}:{}", kind_prefix(analyzed.kind), t.as_program().canonicalize());
        if let Some(&rep) = self.canon.get(&key) {
            // The representative inherits the slot this template would have
            // taken: the stratum keeps one entry per surviving admission
            // attempt, so sampling draws the same stream — and the same
            // per-attempt cost distribution — as the unpruned bank, while
            // the template itself is stored only once.
            self.by_kind[analyzed.kind as usize].push(rep);
            return Ok(AddOutcome::EquivalentTo(rep));
        }
        self.signatures.insert(sig);
        let index = self.templates.len();
        self.canon.insert(key.clone(), index);
        self.canon_keys.push(key);
        self.by_kind[analyzed.kind as usize].push(index);
        self.templates.push(t);
        // Bucket the requirement on its lattice point. The number of
        // distinct points is tiny compared to the number of templates
        // (requirements only record small row/column minima), so a
        // linear probe beats hashing here and keeps the first-seen
        // order deterministic.
        let point = match self.points.iter().position(|p| *p == analyzed.requirement) {
            Some(p) => p,
            None => {
                self.points.push(analyzed.requirement);
                self.points.len() - 1
            }
        };
        self.point_of.push(point);
        self.requirements.push(analyzed.requirement);
        Ok(AddOutcome::Added(index))
    }

    /// Parses a template of `kind` from surface text and
    /// [`TemplateBank::try_add`]s it; parse failures surface as a
    /// `parse-error` diagnostic.
    pub fn try_add_source(
        &mut self,
        kind: KindSlot,
        text: &str,
    ) -> Result<bool, TemplateDiagnostics> {
        match parse_any(kind, text) {
            Ok(t) => self.try_add(t),
            Err(d) => Err(TemplateDiagnostics { diagnostics: vec![d] }),
        }
    }

    /// Adds a SQL template with dedup.
    pub fn add_sql(&mut self, t: SqlTemplate) -> bool {
        self.add(AnyTemplate::Sql(t))
    }

    /// Adds a logical-form template with dedup.
    pub fn add_logic(&mut self, t: LfTemplate) -> bool {
        self.add(AnyTemplate::Logic(t))
    }

    /// Adds an arithmetic template with dedup.
    pub fn add_arith(&mut self, t: AeTemplate) -> bool {
        self.add(AnyTemplate::Arith(t))
    }

    /// Mines a template from a concrete SQL query over `table`.
    pub fn mine_sql(&mut self, stmt: &sqlexec::SelectStmt, table: &tabular::Table) -> bool {
        self.add_sql(sqlexec::abstract_query(stmt, table))
    }

    /// Mines a template from a concrete logical form.
    pub fn mine_logic(&mut self, expr: &logicforms::LfExpr) -> bool {
        self.add_logic(logicforms::abstract_form(expr))
    }

    /// Mines a template from a concrete arithmetic program.
    pub fn mine_arith(&mut self, program: &arithexpr::AeProgram) -> bool {
        self.add_arith(arithexpr::abstract_program(program))
    }

    /// Samples a template of `kind` uniformly over the sampling slots, as
    /// a trait object — a representative carrying equivalence weight is
    /// drawn once per slot, so the distribution matches the unpruned bank.
    /// `None` when the bank holds no template of that kind (or `kind` is
    /// [`KindSlot::None`]). Consumes exactly one `gen_range` draw when
    /// templates of the kind exist — the same stream a `slice::choose`
    /// over a dedicated per-kind vector would consume.
    pub fn choose(&self, kind: KindSlot, rng: &mut impl Rng) -> Option<&dyn ProgramTemplate> {
        self.choose_with_requirement(kind, rng).map(|(t, _)| t)
    }

    /// Like [`TemplateBank::choose`], but also returns the chosen
    /// template's precomputed [`SchemaRequirement`] so the pipeline can
    /// prefilter infeasible (template, table) pairs without re-analyzing.
    /// Identical RNG stream to `choose`: exactly one `gen_range` draw when
    /// the stratum is non-empty, none otherwise.
    pub fn choose_with_requirement(
        &self,
        kind: KindSlot,
        rng: &mut impl Rng,
    ) -> Option<(&dyn ProgramTemplate, &SchemaRequirement)> {
        let stratum = self.by_kind.get(kind as usize)?;
        stratum.choose(rng).map(|&i| (self.templates[i].as_program(), &self.requirements[i]))
    }

    /// The feasible template set of `ctx`: for each kind, the
    /// slot-ordered sampling slots whose [`SchemaRequirement`] the
    /// context satisfies (a feasible representative keeps every one of its
    /// equivalence-weight slots). This is the inverted-index replacement for the
    /// per-pair `satisfied_by` check: `satisfied_by` runs once per
    /// *distinct lattice point* per context (not once per template, and
    /// not once per attempt), and every subsequent
    /// [`FeasibleSet::choose`] is a single uniform draw.
    ///
    /// When the context satisfies every lattice point, the set borrows the
    /// bank's strata without allocating — and sampling from it is
    /// stream-identical to [`TemplateBank::choose`] (the fixed-seed golden
    /// digests rely on this; see `tests/golden_pipeline.rs`).
    pub fn feasible_set(&self, ctx: &ExecContext) -> FeasibleSet<'_> {
        let mut infeasible: Vec<usize> = Vec::new(); // no alloc until first push
        for (p, req) in self.points.iter().enumerate() {
            if !req.satisfied_by(ctx) {
                infeasible.push(p);
            }
        }
        let by_kind = std::array::from_fn(|k| {
            let stratum = self.by_kind[k].as_slice();
            if infeasible.is_empty()
                || !stratum.iter().any(|&i| infeasible.contains(&self.point_of[i]))
            {
                Cow::Borrowed(stratum)
            } else {
                Cow::Owned(
                    stratum
                        .iter()
                        .copied()
                        .filter(|&i| !infeasible.contains(&self.point_of[i]))
                        .collect(),
                )
            }
        });
        FeasibleSet { bank: self, by_kind }
    }

    /// Number of sampling slots of `kind` (zero for [`KindSlot::None`]).
    /// At least the number of distinct templates of the kind; larger when
    /// canonical equivalents left weight slots on their representatives.
    pub fn stratum_len(&self, kind: KindSlot) -> usize {
        self.by_kind.get(kind as usize).map_or(0, Vec::len)
    }

    /// The sampling slots of `kind`: indices into [`TemplateBank::templates`],
    /// one per surviving admission attempt, in admission order. An index
    /// repeats once per canonical equivalent merged into it (empty for
    /// [`KindSlot::None`]).
    pub fn stratum(&self, kind: KindSlot) -> &[usize] {
        self.by_kind.get(kind as usize).map_or(&[][..], Vec::as_slice)
    }

    /// The distinct requirement lattice points, in first-seen order.
    pub fn lattice_points(&self) -> &[SchemaRequirement] {
        &self.points
    }

    /// All distinct templates of one kind, in insertion order. Iterates
    /// the deduplicated store, not the sampling slots, so a representative
    /// carrying equivalence weight still appears exactly once.
    fn of_kind(&self, kind: KindSlot) -> impl Iterator<Item = &AnyTemplate> {
        self.templates.iter().filter(move |t| t.as_program().kind() == kind)
    }

    /// The SQL templates, in insertion order.
    pub fn sql(&self) -> Vec<&SqlTemplate> {
        self.of_kind(KindSlot::Sql)
            .filter_map(|t| match t {
                AnyTemplate::Sql(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    /// The logical-form templates, in insertion order.
    pub fn logic(&self) -> Vec<&LfTemplate> {
        self.of_kind(KindSlot::Logic)
            .filter_map(|t| match t {
                AnyTemplate::Logic(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    /// The arithmetic templates, in insertion order.
    pub fn arith(&self) -> Vec<&AeTemplate> {
        self.of_kind(KindSlot::Arith)
            .filter_map(|t| match t {
                AnyTemplate::Arith(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    /// All templates across kinds, in insertion order.
    pub fn templates(&self) -> &[AnyTemplate] {
        &self.templates
    }

    /// The per-template schema requirements, parallel to
    /// [`TemplateBank::templates`].
    pub fn requirements(&self) -> &[SchemaRequirement] {
        &self.requirements
    }

    /// The kind-prefixed canonical keys (equivalence-class ids), parallel
    /// to [`TemplateBank::templates`]. Pairwise distinct by construction:
    /// [`TemplateBank::try_add_classified`] turns later members of a class
    /// away, so the stored template *is* its class representative.
    pub fn canonical_keys(&self) -> &[String] {
        &self.canon_keys
    }

    /// The index of the admitted template canonically equivalent to `t`
    /// (its class representative), if any. Pure — consults no RNG — so
    /// mining gated on it stays deterministic per seed.
    pub fn equivalent_of(&self, t: &AnyTemplate) -> Option<usize> {
        let p = t.as_program();
        let key = format!("{}:{}", kind_prefix(p.kind()), p.canonicalize());
        self.canon.get(&key).copied()
    }

    pub fn len(&self) -> usize {
        self.templates.len()
    }

    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

/// One context's feasible view of a [`TemplateBank`], produced by
/// [`TemplateBank::feasible_set`].
///
/// Per kind it holds the slot-ordered sampling slots of the templates
/// whose requirement the context satisfies (a representative carrying
/// equivalence weight keeps one slot per merged equivalent) — borrowed
/// straight from the bank's stratum when the whole stratum is feasible
/// (the common case; zero allocations), an owned filtered list otherwise.
#[derive(Debug, Clone)]
pub struct FeasibleSet<'a> {
    bank: &'a TemplateBank,
    by_kind: [Cow<'a, [usize]>; N_TEMPLATE_KINDS],
}

impl<'a> FeasibleSet<'a> {
    /// Samples a feasible template of `kind` uniformly. `None` when no
    /// template of the kind is feasible (or `kind` is [`KindSlot::None`]).
    /// Consumes exactly one `gen_range` draw when the feasible stratum is
    /// non-empty, none otherwise — when the whole stratum is feasible this
    /// is the same RNG stream as [`TemplateBank::choose`].
    pub fn choose(&self, kind: KindSlot, rng: &mut impl Rng) -> Option<&'a dyn ProgramTemplate> {
        let feasible = self.by_kind.get(kind as usize)?;
        feasible.choose(rng).map(|&i| self.bank.templates[i].as_program())
    }

    /// The feasible sampling slots of `kind`, in bank slot order — may
    /// repeat a representative's index once per merged equivalent (empty
    /// for [`KindSlot::None`]).
    pub fn indices(&self, kind: KindSlot) -> &[usize] {
        self.by_kind.get(kind as usize).map_or(&[][..], |c| c.as_ref())
    }

    /// Number of feasible sampling slots of `kind`.
    pub fn len(&self, kind: KindSlot) -> usize {
        self.indices(kind).len()
    }

    /// True when no template of `kind` is feasible.
    pub fn is_empty(&self, kind: KindSlot) -> bool {
        self.indices(kind).is_empty()
    }

    /// True when the view borrows the bank's full stratum for `kind`
    /// (i.e. the context satisfies every lattice point backing it).
    pub fn is_full_stratum(&self, kind: KindSlot) -> bool {
        self.by_kind.get(kind as usize).is_some_and(|c| matches!(c, Cow::Borrowed(_)))
    }
}

fn kind_prefix(kind: KindSlot) -> &'static str {
    match kind {
        KindSlot::Sql => "sql",
        KindSlot::Logic => "lf",
        KindSlot::Arith => "ae",
        KindSlot::None => "none",
    }
}

/// SQUALL-style SQL templates, covering the paper's SQL reasoning types:
/// equivalence, comparison, counting, sum, diff, conjunction.
pub const BUILTIN_SQL: &[&str] = &[
    // superlatives (comparison via order by)
    "select c1 from w order by c2_number desc limit 1",
    "select c1 from w order by c2_number asc limit 1",
    "select c1 from w where c3 = val1 order by c2_number desc limit 1",
    // equivalence lookups
    "select c1 from w where c2 = val1",
    "select c1_number from w where c2 = val1",
    // conjunction
    "select c1 from w where c2 = val1 and c3 = val2",
    "select c1 from w where c2_number > val1 and c3 = val2",
    // comparison filters
    "select c1 from w where c2_number > val1",
    "select c1 from w where c2_number < val1",
    // counting
    "select count ( * ) from w where c1 = val1",
    "select count ( * ) from w where c1_number > val1",
    "select count ( * ) from w where c1_number < val1",
    "select count ( distinct c1 ) from w",
    // aggregation (sum / avg / extremes)
    "select sum ( c1_number ) from w",
    "select avg ( c1_number ) from w",
    "select max ( c1_number ) from w",
    "select min ( c1_number ) from w",
    "select sum ( c1_number ) from w where c2 = val1",
    "select avg ( c1_number ) from w where c2 = val1",
    // diff between columns
    "select c1_number - c2_number from w where c3 = val1",
];

/// Logic2Text-style logical-form templates across the seven logic types.
pub const BUILTIN_LOGIC: &[&str] = &[
    // count
    "eq { count { filter_eq { all_rows ; c1 ; val1 } } ; val2 }",
    "eq { count { filter_greater { all_rows ; c1 ; val1 } } ; val2 }",
    "eq { count { filter_less { all_rows ; c1 ; val1 } } ; val2 }",
    // superlative
    "eq { hop { argmax { all_rows ; c1 ; } ; c2 } ; val1 }",
    "eq { hop { argmin { all_rows ; c1 ; } ; c2 } ; val1 }",
    "eq { max { all_rows ; c1 } ; val1 }",
    "eq { min { all_rows ; c1 } ; val1 }",
    // ordinal
    "eq { hop { nth_argmax { all_rows ; c1 ; val1 } ; c2 } ; val2 }",
    "eq { hop { nth_argmin { all_rows ; c1 ; val1 } ; c2 } ; val2 }",
    "eq { nth_max { all_rows ; c1 ; val1 } ; val2 }",
    "eq { nth_min { all_rows ; c1 ; val1 } ; val2 }",
    // aggregation
    "round_eq { avg { all_rows ; c1 } ; val1 }",
    "round_eq { sum { all_rows ; c1 } ; val1 }",
    "round_eq { avg { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }",
    // comparative
    "greater { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }",
    "less { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }",
    "eq { diff { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } } ; val3 }",
    // majority
    "most_greater { all_rows ; c1 ; val1 }",
    "most_less { all_rows ; c1 ; val1 }",
    "most_eq { all_rows ; c1 ; val1 }",
    "all_greater { all_rows ; c1 ; val1 }",
    "all_less { all_rows ; c1 ; val1 }",
    // unique
    "only { filter_eq { all_rows ; c1 ; val1 } }",
    "only { filter_greater { all_rows ; c1 ; val1 } }",
];

/// FinQA-style arithmetic templates (the counting/arithmetic families of
/// TAT-QA).
pub const BUILTIN_ARITH: &[&str] = &[
    // percentage change (the paper's running example)
    "subtract( val1 , val2 ) , divide( #0 , val2 )",
    // difference / change
    "subtract( val1 , val2 )",
    // total
    "add( val1 , val2 )",
    // average of two
    "add( val1 , val2 ) , divide( #0 , 2 )",
    // ratio
    "divide( val1 , val2 )",
    // comparison
    "greater( val1 , val2 )",
    // proportion of a total
    "table_sum( c1 ) , divide( val1 , #0 )",
    // column aggregations
    "table_sum( c1 )",
    "table_average( c1 )",
    "table_max( c1 )",
    "table_min( c1 )",
    // compound: change in sum
    "table_sum( c1 ) , table_sum( c2 ) , subtract( #0 , #1 )",
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::Table;

    fn sql(text: &str) -> SqlTemplate {
        SqlTemplate::parse(text).unwrap_or_else(|e| panic!("sql template {text:?}: {e}"))
    }

    fn logic(text: &str) -> LfTemplate {
        LfTemplate::parse(text).unwrap_or_else(|e| panic!("lf template {text:?}: {e}"))
    }

    #[test]
    fn builtin_bank_parses_and_is_deduped() {
        let bank = TemplateBank::builtin();
        assert_eq!(bank.sql().len(), BUILTIN_SQL.len());
        assert_eq!(bank.logic().len(), BUILTIN_LOGIC.len());
        assert_eq!(bank.arith().len(), BUILTIN_ARITH.len());
        assert_eq!(bank.len(), BUILTIN_SQL.len() + BUILTIN_LOGIC.len() + BUILTIN_ARITH.len());
        assert_eq!(bank.requirements().len(), bank.len());
    }

    #[test]
    fn builtin_bank_is_diagnostic_clean() {
        // The contract behind the infallible `builtin()` wrapper (and the
        // `xtask audit-templates` CI gate): every builtin template parses
        // and typechecks.
        match TemplateBank::builtin_checked() {
            Ok(bank) => assert_eq!(
                bank.len(),
                BUILTIN_SQL.len() + BUILTIN_LOGIC.len() + BUILTIN_ARITH.len()
            ),
            Err(diags) => panic!("builtin bank has diagnostics:\n{diags}"),
        }
    }

    #[test]
    fn dedup_rejects_duplicates() {
        let mut bank = TemplateBank::new();
        let t = sql("select c1 from w where c2 = val1");
        assert!(bank.add_sql(t.clone()));
        assert!(!bank.add_sql(t));
        assert_eq!(bank.sql().len(), 1);
    }

    #[test]
    fn builtin_canonical_forms_are_pairwise_distinct() {
        // The golden-pipeline digests pin sampling over the full builtin
        // strata, so canonical dedup must never turn a builtin away: every
        // builtin must be its own equivalence class.
        let bank = TemplateBank::builtin();
        assert_eq!(bank.len(), BUILTIN_SQL.len() + BUILTIN_LOGIC.len() + BUILTIN_ARITH.len());
        let keys = bank.canonical_keys();
        assert_eq!(keys.len(), bank.len());
        for (i, k) in keys.iter().enumerate() {
            assert!(
                keys[..i].iter().all(|other| other != k),
                "builtin template {i} ({}) shares canonical key {k}",
                bank.templates()[i].as_program().signature()
            );
        }
    }

    #[test]
    fn canonically_equivalent_templates_are_turned_away() {
        let mut bank = TemplateBank::new();
        let first = sql("select c1 from w where c2 = val1");
        let flipped = sql("select c1 from w where val1 = c2");
        assert_eq!(
            bank.try_add_classified(AnyTemplate::Sql(first.clone())),
            Ok(AddOutcome::Added(0))
        );
        assert_eq!(
            bank.try_add_classified(AnyTemplate::Sql(first)),
            Ok(AddOutcome::DuplicateSignature),
            "exact re-add reports a signature duplicate, not an equivalence"
        );
        assert_eq!(
            bank.try_add_classified(AnyTemplate::Sql(flipped.clone())),
            Ok(AddOutcome::EquivalentTo(0)),
            "orientation-flipped comparison merges into its representative"
        );
        assert_eq!(bank.len(), 1, "equivalents never enter the bank");
        assert_eq!(bank.equivalent_of(&AnyTemplate::Sql(flipped)), Some(0));
        // The infallible wrapper folds both duplicate flavors into false.
        assert!(!bank.add_sql(sql("select c1 from w where val3 = c7")));
        assert_eq!(bank.canonical_keys().len(), 1);
        // Both equivalents left weight slots on the representative; the
        // exact signature duplicate left none.
        assert_eq!(bank.stratum_len(crate::telemetry::KindSlot::Sql), 3);
        assert_eq!(bank.stratum(crate::telemetry::KindSlot::Sql), [0, 0, 0]);
    }

    #[test]
    fn equivalence_weight_slots_preserve_the_unpruned_draw_stream() {
        // A pruned equivalent instantiates identically to its
        // representative under every RNG stream (`analysis::verify_merge`
        // witnesses that), so the unpruned bank's draw stream maps
        // slot-for-slot onto the pruned bank's — provided the
        // representative inherits the equivalent's slot. Pin that mapping:
        // sampling the pruned bank must be stream-identical to a
        // `slice::choose` over the counterfactual unpruned stratum.
        let mut bank = TemplateBank::new();
        let rep = "select c1 from w where c2 = val1";
        let other = "select c3 from w";
        assert_eq!(bank.try_add_classified(AnyTemplate::Sql(sql(rep))), Ok(AddOutcome::Added(0)));
        assert_eq!(bank.try_add_classified(AnyTemplate::Sql(sql(other))), Ok(AddOutcome::Added(1)));
        assert_eq!(
            bank.try_add_classified(AnyTemplate::Sql(sql("select c1 from w where val1 = c2"))),
            Ok(AddOutcome::EquivalentTo(0))
        );
        assert_eq!(bank.len(), 2, "the equivalent is stored only as weight");
        assert_eq!(bank.stratum(crate::telemetry::KindSlot::Sql), [0, 1, 0]);
        // The flipped template draws the same stream as `rep`, so the
        // unpruned stratum is [rep, other, rep] up to signature.
        let unpruned = [rep, other, rep];
        for seed in 0..32u64 {
            let mut a = rand::rngs::StdRng::seed_from_u64(seed);
            let mut b = rand::rngs::StdRng::seed_from_u64(seed);
            let drawn = bank
                .choose(crate::telemetry::KindSlot::Sql, &mut a)
                .map(|t| t.signature())
                .unwrap_or_default();
            let expect = unpruned.choose(&mut b).copied().unwrap_or_default();
            assert_eq!(drawn, expect, "draw stream diverged at seed {seed}");
        }
    }

    #[test]
    fn dedup_does_not_collide_across_kinds() {
        // Signatures are namespaced per kind before entering the shared
        // dedup set, so templates of different kinds never collide there:
        // each kind dedups only against itself.
        let mut bank = TemplateBank::new();
        let s = sql("select c1 from w");
        let l = logic("only { filter_eq { all_rows ; c1 ; val1 } }");
        assert!(bank.add_sql(s.clone()), "first SQL admitted");
        assert!(bank.add_logic(l.clone()), "first logic admitted");
        assert!(!bank.add_sql(s), "second SQL deduped within its kind");
        assert!(!bank.add_logic(l), "second logic deduped within its kind");
        assert_eq!(bank.sql().len(), 1);
        assert_eq!(bank.logic().len(), 1);
        assert_eq!(bank.len(), 2);
    }

    #[test]
    fn cross_kind_signature_collisions_cannot_reach_the_shared_sets() {
        // No two kinds can render the same unprefixed signature today: SQL
        // statements start with `select`, logic applications brace their
        // arguments (`op { a ; b }`), arithmetic steps parenthesize them
        // (`op( a , b )`). So a literal collision cannot be constructed —
        // but the dedup *and* canonical keys still namespace by kind, so a
        // future surface-syntax overlap could never merge across DSLs.
        let prefixes = [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith].map(kind_prefix);
        for (i, p) in prefixes.iter().enumerate() {
            assert!(prefixes[i + 1..].iter().all(|q| q != p), "kind prefixes must be distinct");
        }
        // The closest pair the DSLs allow: the same operator word with the
        // same operand count. Both survive, under namespaced keys.
        let mut bank = TemplateBank::new();
        let ae = AeTemplate::parse("greater( val1 , val2 )")
            .unwrap_or_else(|e| panic!("ae template: {e}"));
        let lf = logic("greater { max { all_rows ; c1 } ; val1 }");
        assert!(bank.add_arith(ae));
        assert!(bank.add_logic(lf));
        assert_eq!(bank.len(), 2);
        assert!(bank.canonical_keys()[0].starts_with("ae:"));
        assert!(bank.canonical_keys()[1].starts_with("lf:"));
    }

    #[test]
    fn ill_typed_templates_are_rejected_with_diagnostics() {
        let mut bank = TemplateBank::new();
        // `count` does not produce a truth value, so the claim can never
        // be labeled: the analyzer rejects it before it enters the bank.
        let t = logic("count { all_rows }");
        let err = match bank.try_add(AnyTemplate::Logic(t.clone())) {
            Err(e) => e,
            Ok(admitted) => panic!("ill-typed template admitted: {admitted}"),
        };
        assert_eq!(err.len(), 1);
        assert_eq!(err.diagnostics[0].code, "non-boolean-root");
        assert_eq!(err.diagnostics[0].kind, KindSlot::Logic);
        assert!(bank.is_empty(), "rejected template must not enter the bank");
        // The infallible wrapper folds the rejection into `false`.
        assert!(!bank.add_logic(t));
        assert!(bank.is_empty());
    }

    #[test]
    fn try_add_source_reports_parse_failures() {
        let mut bank = TemplateBank::new();
        let err = match bank.try_add_source(KindSlot::Sql, "select count ( from w") {
            Err(e) => e,
            Ok(admitted) => panic!("malformed source admitted: {admitted}"),
        };
        assert_eq!(err.diagnostics[0].code, crate::analysis::PARSE_ERROR);
        assert!(bank.is_empty());
        assert_eq!(bank.try_add_source(KindSlot::Arith, "table_sum( c1 )"), Ok(true));
        assert_eq!(bank.try_add_source(KindSlot::Arith, "table_sum( c1 )"), Ok(false));
    }

    #[test]
    fn choose_is_kind_stratified() {
        let bank = TemplateBank::builtin();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            let t = bank
                .choose(crate::telemetry::KindSlot::Arith, &mut rng)
                .unwrap_or_else(|| panic!("builtin bank has arith templates"));
            assert_eq!(t.kind(), crate::telemetry::KindSlot::Arith);
        }
        assert!(bank.choose(crate::telemetry::KindSlot::None, &mut rng).is_none());
        let empty = TemplateBank::new();
        assert!(empty.choose(crate::telemetry::KindSlot::Sql, &mut rng).is_none());
    }

    #[test]
    fn choose_with_requirement_draws_the_same_stream_as_choose() {
        let bank = TemplateBank::builtin();
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for kind in [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith] {
            for _ in 0..16 {
                let plain = bank.choose(kind, &mut a).map(|t| t.signature());
                let with_req = bank.choose_with_requirement(kind, &mut b);
                assert_eq!(plain, with_req.map(|(t, _)| t.signature()));
                let (_, req) = with_req.unwrap_or_else(|| panic!("builtin bank is non-empty"));
                // Every builtin template binds at least one hole, so its
                // requirement is never the trivial bottom element.
                assert!(!req.is_trivial());
            }
        }
        // Identical residual streams: the next draws agree.
        assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
    }

    #[test]
    fn lattice_points_are_distinct_and_cover_every_requirement() {
        let bank = TemplateBank::builtin();
        let points = bank.lattice_points();
        assert!(!points.is_empty());
        assert!(
            points.len() < bank.len(),
            "bucketing must collapse: {} points for {} templates",
            points.len(),
            bank.len()
        );
        for (i, p) in points.iter().enumerate() {
            assert!(
                points[..i].iter().all(|q| q != p),
                "lattice point {i} duplicates an earlier point"
            );
        }
        for req in bank.requirements() {
            assert_eq!(
                points.iter().filter(|p| *p == req).count(),
                1,
                "every stored requirement maps to exactly one lattice point"
            );
        }
    }

    #[test]
    fn feasible_set_borrows_full_strata_and_draws_the_choose_stream() {
        let table = Table::from_strings(
            "t",
            &[
                vec!["name", "city", "points", "wins"],
                vec!["Reds", "Oslo", "77", "21"],
                vec!["Blues", "Lima", "64", "18"],
                vec!["Greens", "Kyiv", "81", "24"],
                vec!["Golds", "Quito", "59", "15"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let bank = TemplateBank::builtin();
        let ctx = tabular::ExecContext::new(&table);
        let feasible = bank.feasible_set(&ctx);
        let mut a = StdRng::seed_from_u64(23);
        let mut b = StdRng::seed_from_u64(23);
        for kind in [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith] {
            assert!(feasible.is_full_stratum(kind), "rich table satisfies every lattice point");
            assert_eq!(feasible.len(kind), bank.stratum_len(kind));
            for _ in 0..16 {
                let via_bank = bank.choose(kind, &mut a).map(|t| t.signature());
                let via_set = feasible.choose(kind, &mut b).map(|t| t.signature());
                assert_eq!(via_bank, via_set, "full-stratum feasible draw must match bank draw");
            }
        }
        assert!(feasible.choose(KindSlot::None, &mut b).is_none());
        // Identical residual streams: the index is byte-identity-safe.
        assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
    }

    #[test]
    fn feasible_set_filters_like_the_bruteforce_scan() {
        // A numberless two-column table: arith is entirely infeasible,
        // sql/logic keep only the templates whose requirement holds.
        let table = Table::from_strings(
            "t",
            &[vec!["name", "city"], vec!["Reds", "Oslo"], vec!["Blues", "Lima"]],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let bank = TemplateBank::builtin();
        let ctx = tabular::ExecContext::new(&table);
        let feasible = bank.feasible_set(&ctx);
        assert!(feasible.is_empty(KindSlot::Arith), "no arith template fits a numberless table");
        for kind in [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith] {
            let brute: Vec<usize> = (0..bank.len())
                .filter(|&i| bank.templates()[i].as_program().kind() == kind)
                .filter(|&i| bank.requirements()[i].satisfied_by(&ctx))
                .collect();
            assert_eq!(feasible.indices(kind), brute.as_slice(), "kind {kind:?}");
        }
        assert!(feasible.len(KindSlot::Sql) < bank.stratum_len(KindSlot::Sql));
        let mut rng = StdRng::seed_from_u64(7);
        assert!(feasible.choose(KindSlot::Arith, &mut rng).is_none());
        for _ in 0..16 {
            let t = feasible
                .choose(KindSlot::Sql, &mut rng)
                .unwrap_or_else(|| panic!("some sql templates stay feasible"));
            let i = bank
                .templates()
                .iter()
                .position(|b| {
                    b.as_program().kind() == KindSlot::Sql
                        && b.as_program().signature() == t.signature()
                })
                .unwrap_or_else(|| panic!("chosen template is in the bank"));
            assert!(bank.requirements()[i].satisfied_by(&ctx));
        }
    }

    #[test]
    fn mining_abstracts_and_dedups() {
        let table =
            Table::from_strings("t", &[vec!["name", "pts"], vec!["a", "1"], vec!["b", "2"]])
                .unwrap_or_else(|e| panic!("test table: {e}"));
        let mut bank = TemplateBank::new();
        let q1 = sqlexec::parse("select [name] from w where [pts] > 1")
            .unwrap_or_else(|e| panic!("query: {e}"));
        let q2 = sqlexec::parse("select [name] from w where [pts] > 2")
            .unwrap_or_else(|e| panic!("query: {e}"));
        assert!(bank.mine_sql(&q1, &table));
        assert!(!bank.mine_sql(&q2, &table), "same logic structure must dedup");
        assert_eq!(bank.sql().len(), 1);
    }

    #[test]
    fn builtin_sql_templates_instantiate_on_a_rich_table() {
        let table = Table::from_strings(
            "t",
            &[
                vec!["name", "city", "points", "wins"],
                vec!["Reds", "Oslo", "77", "21"],
                vec!["Blues", "Lima", "64", "18"],
                vec!["Greens", "Kyiv", "81", "24"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let bank = TemplateBank::builtin();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ok = 0;
        for t in bank.sql() {
            if let Some(stmt) = t.instantiate(&table, &mut rng) {
                if sqlexec::execute(&stmt, &table).is_ok() {
                    ok += 1;
                }
            }
        }
        // Every builtin SQL template should fit a table with 2 text + 2
        // numeric columns.
        assert_eq!(ok, bank.sql().len());
    }

    #[test]
    fn builtin_logic_templates_instantiate() {
        let table = Table::from_strings(
            "t",
            &[
                vec!["name", "city", "points", "wins"],
                vec!["Reds", "Oslo", "77", "21"],
                vec!["Blues", "Lima", "64", "18"],
                vec!["Greens", "Kyiv", "81", "24"],
                vec!["Golds", "Quito", "59", "15"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let bank = TemplateBank::builtin();
        let mut rng = StdRng::seed_from_u64(2);
        let mut ok = 0;
        for t in bank.logic() {
            // Supported claims at minimum; some templates may fail for a
            // given truth target on a given table, but most should land.
            if t.instantiate(&table, &mut rng, true).is_some() {
                ok += 1;
            }
        }
        assert!(
            ok >= bank.logic().len() * 3 / 4,
            "only {ok}/{} logic templates instantiated",
            bank.logic().len()
        );
    }

    #[test]
    fn builtin_arith_templates_instantiate() {
        let table = Table::from_strings(
            "fin",
            &[
                vec!["item", "2019", "2018"],
                vec!["Revenue", "8800", "8000"],
                vec!["Costs", "6100", "5900"],
                vec!["Equity", "3200", "4000"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let bank = TemplateBank::builtin();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ok = 0;
        for t in bank.arith() {
            if t.instantiate(&table, &mut rng).is_some() {
                ok += 1;
            }
        }
        assert_eq!(ok, bank.arith().len());
    }
}
