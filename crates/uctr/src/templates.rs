//! Program-template collection (paper §IV-B).
//!
//! The paper mines program templates from three seed corpora — SQUALL for
//! SQL, LOGIC2TEXT for logical forms, FinQA for arithmetic expressions —
//! replacing column names and values with typed placeholders and then
//! running a *filtration procedure* that drops redundant templates (two
//! questions with the same underlying logic abstract to the same template).
//!
//! The reproduction ships the same machinery: [`TemplateBank`] holds the
//! deduplicated templates, supports mining new ones from concrete programs
//! via the per-crate `abstract_*` functions, and provides
//! [`TemplateBank::builtin`] — a bank transcribed from the template
//! families those corpora contain, stratified over the reasoning types the
//! paper enumerates (§II-C).

use crate::program::{AnyTemplate, ProgramTemplate};
use crate::telemetry::KindSlot;
use arithexpr::AeTemplate;
use logicforms::LfTemplate;
use rand::seq::SliceRandom;
use rand::Rng;
use rustc_hash::FxHashSet;
use sqlexec::SqlTemplate;

/// Number of storable template kinds (`sql` / `logic` / `arith` — the
/// `none` slot holds no templates).
const N_TEMPLATE_KINDS: usize = 3;

/// A deduplicated, kind-stratified collection of program templates.
///
/// All templates live in one `Vec<AnyTemplate>` in insertion order; the
/// `by_kind` index stratifies them so that per-kind sampling
/// ([`TemplateBank::choose`]) stays O(1) and draws the same RNG stream as
/// sampling from a dedicated per-kind vector would.
#[derive(Debug, Clone, Default)]
pub struct TemplateBank {
    templates: Vec<AnyTemplate>,
    /// Indices into `templates`, stratified by `KindSlot as usize`.
    by_kind: [Vec<usize>; N_TEMPLATE_KINDS],
    signatures: FxHashSet<String>,
}

impl TemplateBank {
    /// An empty bank.
    pub fn new() -> TemplateBank {
        TemplateBank::default()
    }

    /// The built-in bank (SQUALL / Logic2Text / FinQA-style families).
    pub fn builtin() -> TemplateBank {
        let mut bank = TemplateBank::new();
        for t in BUILTIN_SQL {
            bank.add_sql(
                SqlTemplate::parse(t).unwrap_or_else(|e| panic!("builtin SQL `{t}`: {e}")),
            );
        }
        for t in BUILTIN_LOGIC {
            bank.add_logic(
                LfTemplate::parse(t).unwrap_or_else(|e| panic!("builtin LF `{t}`: {e}")),
            );
        }
        for t in BUILTIN_ARITH {
            bank.add_arith(
                AeTemplate::parse(t).unwrap_or_else(|e| panic!("builtin AE `{t}`: {e}")),
            );
        }
        bank
    }

    /// Adds a template of any kind; returns false if a template of the
    /// same kind with the same signature is already present (the paper's
    /// filtration step). Signatures are prefixed per kind, so identical
    /// surface text in different DSLs never collides.
    pub fn add(&mut self, t: AnyTemplate) -> bool {
        let program = t.as_program();
        let kind = program.kind();
        let sig = format!("{}:{}", kind_prefix(kind), program.signature());
        if self.signatures.insert(sig) {
            self.by_kind[kind as usize].push(self.templates.len());
            self.templates.push(t);
            true
        } else {
            false
        }
    }

    /// Adds a SQL template with dedup.
    pub fn add_sql(&mut self, t: SqlTemplate) -> bool {
        self.add(AnyTemplate::Sql(t))
    }

    /// Adds a logical-form template with dedup.
    pub fn add_logic(&mut self, t: LfTemplate) -> bool {
        self.add(AnyTemplate::Logic(t))
    }

    /// Adds an arithmetic template with dedup.
    pub fn add_arith(&mut self, t: AeTemplate) -> bool {
        self.add(AnyTemplate::Arith(t))
    }

    /// Mines a template from a concrete SQL query over `table`.
    pub fn mine_sql(&mut self, stmt: &sqlexec::SelectStmt, table: &tabular::Table) -> bool {
        self.add_sql(sqlexec::abstract_query(stmt, table))
    }

    /// Mines a template from a concrete logical form.
    pub fn mine_logic(&mut self, expr: &logicforms::LfExpr) -> bool {
        self.add_logic(logicforms::abstract_form(expr))
    }

    /// Mines a template from a concrete arithmetic program.
    pub fn mine_arith(&mut self, program: &arithexpr::AeProgram) -> bool {
        self.add_arith(arithexpr::abstract_program(program))
    }

    /// Samples a template of `kind` uniformly, as a trait object. `None`
    /// when the bank holds no template of that kind (or `kind` is
    /// [`KindSlot::None`]). Consumes exactly one `gen_range` draw when
    /// templates of the kind exist — the same stream a `slice::choose`
    /// over a dedicated per-kind vector would consume.
    pub fn choose(&self, kind: KindSlot, rng: &mut impl Rng) -> Option<&dyn ProgramTemplate> {
        let stratum = self.by_kind.get(kind as usize)?;
        stratum.choose(rng).map(|&i| self.templates[i].as_program())
    }

    /// All templates of one kind, in insertion order.
    fn of_kind(&self, kind: KindSlot) -> impl Iterator<Item = &AnyTemplate> {
        self.by_kind[kind as usize].iter().map(|&i| &self.templates[i])
    }

    /// The SQL templates, in insertion order.
    pub fn sql(&self) -> Vec<&SqlTemplate> {
        self.of_kind(KindSlot::Sql)
            .filter_map(|t| match t {
                AnyTemplate::Sql(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    /// The logical-form templates, in insertion order.
    pub fn logic(&self) -> Vec<&LfTemplate> {
        self.of_kind(KindSlot::Logic)
            .filter_map(|t| match t {
                AnyTemplate::Logic(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    /// The arithmetic templates, in insertion order.
    pub fn arith(&self) -> Vec<&AeTemplate> {
        self.of_kind(KindSlot::Arith)
            .filter_map(|t| match t {
                AnyTemplate::Arith(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    /// All templates across kinds, in insertion order.
    pub fn templates(&self) -> &[AnyTemplate] {
        &self.templates
    }

    pub fn len(&self) -> usize {
        self.templates.len()
    }

    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

fn kind_prefix(kind: KindSlot) -> &'static str {
    match kind {
        KindSlot::Sql => "sql",
        KindSlot::Logic => "lf",
        KindSlot::Arith => "ae",
        KindSlot::None => "none",
    }
}

/// SQUALL-style SQL templates, covering the paper's SQL reasoning types:
/// equivalence, comparison, counting, sum, diff, conjunction.
pub const BUILTIN_SQL: &[&str] = &[
    // superlatives (comparison via order by)
    "select c1 from w order by c2_number desc limit 1",
    "select c1 from w order by c2_number asc limit 1",
    "select c1 from w where c3 = val1 order by c2_number desc limit 1",
    // equivalence lookups
    "select c1 from w where c2 = val1",
    "select c1_number from w where c2 = val1",
    // conjunction
    "select c1 from w where c2 = val1 and c3 = val2",
    "select c1 from w where c2_number > val1 and c3 = val2",
    // comparison filters
    "select c1 from w where c2_number > val1",
    "select c1 from w where c2_number < val1",
    // counting
    "select count ( * ) from w where c1 = val1",
    "select count ( * ) from w where c1_number > val1",
    "select count ( * ) from w where c1_number < val1",
    "select count ( distinct c1 ) from w",
    // aggregation (sum / avg / extremes)
    "select sum ( c1_number ) from w",
    "select avg ( c1_number ) from w",
    "select max ( c1_number ) from w",
    "select min ( c1_number ) from w",
    "select sum ( c1_number ) from w where c2 = val1",
    "select avg ( c1_number ) from w where c2 = val1",
    // diff between columns
    "select c1_number - c2_number from w where c3 = val1",
];

/// Logic2Text-style logical-form templates across the seven logic types.
pub const BUILTIN_LOGIC: &[&str] = &[
    // count
    "eq { count { filter_eq { all_rows ; c1 ; val1 } } ; val2 }",
    "eq { count { filter_greater { all_rows ; c1 ; val1 } } ; val2 }",
    "eq { count { filter_less { all_rows ; c1 ; val1 } } ; val2 }",
    // superlative
    "eq { hop { argmax { all_rows ; c1 ; } ; c2 } ; val1 }",
    "eq { hop { argmin { all_rows ; c1 ; } ; c2 } ; val1 }",
    "eq { max { all_rows ; c1 } ; val1 }",
    "eq { min { all_rows ; c1 } ; val1 }",
    // ordinal
    "eq { hop { nth_argmax { all_rows ; c1 ; val1 } ; c2 } ; val2 }",
    "eq { hop { nth_argmin { all_rows ; c1 ; val1 } ; c2 } ; val2 }",
    "eq { nth_max { all_rows ; c1 ; val1 } ; val2 }",
    "eq { nth_min { all_rows ; c1 ; val1 } ; val2 }",
    // aggregation
    "round_eq { avg { all_rows ; c1 } ; val1 }",
    "round_eq { sum { all_rows ; c1 } ; val1 }",
    "round_eq { avg { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }",
    // comparative
    "greater { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }",
    "less { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } }",
    "eq { diff { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; hop { filter_eq { all_rows ; c1 ; val2 } ; c2 } } ; val3 }",
    // majority
    "most_greater { all_rows ; c1 ; val1 }",
    "most_less { all_rows ; c1 ; val1 }",
    "most_eq { all_rows ; c1 ; val1 }",
    "all_greater { all_rows ; c1 ; val1 }",
    "all_less { all_rows ; c1 ; val1 }",
    // unique
    "only { filter_eq { all_rows ; c1 ; val1 } }",
    "only { filter_greater { all_rows ; c1 ; val1 } }",
];

/// FinQA-style arithmetic templates (the counting/arithmetic families of
/// TAT-QA).
pub const BUILTIN_ARITH: &[&str] = &[
    // percentage change (the paper's running example)
    "subtract( val1 , val2 ) , divide( #0 , val2 )",
    // difference / change
    "subtract( val1 , val2 )",
    // total
    "add( val1 , val2 )",
    // average of two
    "add( val1 , val2 ) , divide( #0 , 2 )",
    // ratio
    "divide( val1 , val2 )",
    // comparison
    "greater( val1 , val2 )",
    // proportion of a total
    "table_sum( c1 ) , divide( val1 , #0 )",
    // column aggregations
    "table_sum( c1 )",
    "table_average( c1 )",
    "table_max( c1 )",
    "table_min( c1 )",
    // compound: change in sum
    "table_sum( c1 ) , table_sum( c2 ) , subtract( #0 , #1 )",
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::Table;

    #[test]
    fn builtin_bank_parses_and_is_deduped() {
        let bank = TemplateBank::builtin();
        assert_eq!(bank.sql().len(), BUILTIN_SQL.len());
        assert_eq!(bank.logic().len(), BUILTIN_LOGIC.len());
        assert_eq!(bank.arith().len(), BUILTIN_ARITH.len());
        assert_eq!(bank.len(), BUILTIN_SQL.len() + BUILTIN_LOGIC.len() + BUILTIN_ARITH.len());
    }

    #[test]
    fn dedup_rejects_duplicates() {
        let mut bank = TemplateBank::new();
        let t = SqlTemplate::parse("select c1 from w where c2 = val1").unwrap();
        assert!(bank.add_sql(t.clone()));
        assert!(!bank.add_sql(t));
        assert_eq!(bank.sql().len(), 1);
    }

    #[test]
    fn dedup_does_not_collide_across_kinds() {
        // Two templates of different kinds whose raw signatures are the
        // same string: the kind prefix must keep them apart, while each
        // kind still dedups against itself.
        let sql = SqlTemplate::parse("select c1 from w").unwrap();
        let raw = sql.signature();
        let logic = logicforms::LfTemplate::from_expr(logicforms::LfExpr::Const(raw.clone()));
        assert_eq!(logic.signature(), raw, "test premise: identical raw signatures");

        let mut bank = TemplateBank::new();
        assert!(bank.add_sql(sql.clone()), "first SQL admitted");
        assert!(bank.add_logic(logic.clone()), "same-signature logic template admitted");
        assert!(!bank.add_sql(sql), "second SQL deduped within its kind");
        assert!(!bank.add_logic(logic), "second logic deduped within its kind");
        assert_eq!(bank.sql().len(), 1);
        assert_eq!(bank.logic().len(), 1);
        assert_eq!(bank.len(), 2);
    }

    #[test]
    fn choose_is_kind_stratified() {
        let bank = TemplateBank::builtin();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            let t = bank.choose(crate::telemetry::KindSlot::Arith, &mut rng).unwrap();
            assert_eq!(t.kind(), crate::telemetry::KindSlot::Arith);
        }
        assert!(bank.choose(crate::telemetry::KindSlot::None, &mut rng).is_none());
        let empty = TemplateBank::new();
        assert!(empty.choose(crate::telemetry::KindSlot::Sql, &mut rng).is_none());
    }

    #[test]
    fn mining_abstracts_and_dedups() {
        let table =
            Table::from_strings("t", &[vec!["name", "pts"], vec!["a", "1"], vec!["b", "2"]])
                .unwrap();
        let mut bank = TemplateBank::new();
        let q1 = sqlexec::parse("select [name] from w where [pts] > 1").unwrap();
        let q2 = sqlexec::parse("select [name] from w where [pts] > 2").unwrap();
        assert!(bank.mine_sql(&q1, &table));
        assert!(!bank.mine_sql(&q2, &table), "same logic structure must dedup");
        assert_eq!(bank.sql().len(), 1);
    }

    #[test]
    fn builtin_sql_templates_instantiate_on_a_rich_table() {
        let table = Table::from_strings(
            "t",
            &[
                vec!["name", "city", "points", "wins"],
                vec!["Reds", "Oslo", "77", "21"],
                vec!["Blues", "Lima", "64", "18"],
                vec!["Greens", "Kyiv", "81", "24"],
            ],
        )
        .unwrap();
        let bank = TemplateBank::builtin();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ok = 0;
        for t in bank.sql() {
            if let Some(stmt) = t.instantiate(&table, &mut rng) {
                if sqlexec::execute(&stmt, &table).is_ok() {
                    ok += 1;
                }
            }
        }
        // Every builtin SQL template should fit a table with 2 text + 2
        // numeric columns.
        assert_eq!(ok, bank.sql().len());
    }

    #[test]
    fn builtin_logic_templates_instantiate() {
        let table = Table::from_strings(
            "t",
            &[
                vec!["name", "city", "points", "wins"],
                vec!["Reds", "Oslo", "77", "21"],
                vec!["Blues", "Lima", "64", "18"],
                vec!["Greens", "Kyiv", "81", "24"],
                vec!["Golds", "Quito", "59", "15"],
            ],
        )
        .unwrap();
        let bank = TemplateBank::builtin();
        let mut rng = StdRng::seed_from_u64(2);
        let mut ok = 0;
        for t in bank.logic() {
            // Supported claims at minimum; some templates may fail for a
            // given truth target on a given table, but most should land.
            if t.instantiate(&table, &mut rng, true).is_some() {
                ok += 1;
            }
        }
        assert!(
            ok >= bank.logic().len() * 3 / 4,
            "only {ok}/{} logic templates instantiated",
            bank.logic().len()
        );
    }

    #[test]
    fn builtin_arith_templates_instantiate() {
        let table = Table::from_strings(
            "fin",
            &[
                vec!["item", "2019", "2018"],
                vec!["Revenue", "8800", "8000"],
                vec!["Costs", "6100", "5900"],
                vec!["Equity", "3200", "4000"],
            ],
        )
        .unwrap();
        let bank = TemplateBank::builtin();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ok = 0;
        for t in bank.arith() {
            if t.instantiate(&table, &mut rng).is_some() {
                ok += 1;
            }
        }
        assert_eq!(ok, bank.arith().len());
    }
}
