//! `uctr-served` — the generation daemon.
//!
//! Binds a TCP address and serves length-prefixed JSON [`uctr::GenRequest`]
//! frames until killed. See DESIGN.md §11 for the protocol and README.md
//! for usage.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::net::TcpListener;
use std::sync::Arc;
use uctr::serve::{Daemon, ServeConfig};

const USAGE: &str = "usage: uctr-served [--addr HOST:PORT] [--shards N] \
                     [--queue-bound N] [--retry-after-ms MS]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7771".to_string();
    let mut cfg = ServeConfig {
        shards: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
        ..ServeConfig::default()
    };

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut take = |what: &str| match it.next() {
            Some(v) => v.clone(),
            None => fail(&format!("{flag} needs a {what}\n{USAGE}")),
        };
        match flag.as_str() {
            "--addr" => addr = take("HOST:PORT"),
            "--shards" => cfg.shards = parse(flag, &take("count")),
            "--queue-bound" => cfg.queue_bound = parse(flag, &take("count")),
            "--retry-after-ms" => cfg.retry_after_ms = parse(flag, &take("duration")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`\n{USAGE}")),
        }
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => fail(&format!("cannot bind {addr}: {e}")),
    };
    let local = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => fail(&format!("cannot resolve bound address: {e}")),
    };
    let daemon = match Daemon::start(cfg.clone()) {
        Ok(d) => Arc::new(d),
        Err(e) => fail(&format!("cannot start workers: {e}")),
    };
    // Single parseable readiness line: loadgen and the CI smoke step wait
    // for it before opening connections.
    println!(
        "uctr-served listening on {local} shards={} queue_bound={}",
        cfg.shards, cfg.queue_bound
    );
    daemon.accept_loop(listener);
}

fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    match raw.parse() {
        Ok(v) => v,
        Err(_) => fail(&format!("{flag}: cannot parse `{raw}`")),
    }
}

fn fail(message: &str) -> ! {
    eprintln!("uctr-served: {message}");
    std::process::exit(2);
}
