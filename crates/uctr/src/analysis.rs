//! Unified template static analysis: the cross-DSL layer over the
//! per-crate `analysis` modules (see `DESIGN.md` §6).
//!
//! Each executor crate ships an `analysis::analyze` function that
//! typechecks a parsed template *without a table* and computes the
//! [`SchemaRequirement`] a table must meet for instantiation to have any
//! chance of succeeding. This module stitches those per-DSL results into
//! one kind-tagged view:
//!
//! * [`AnalyzedTemplate`] — kind + dedup signature + requirement + issues,
//!   obtained from any [`ProgramTemplate`] via [`AnalyzedTemplate::of`] or
//!   from surface text via [`analyze_text`];
//! * [`TemplateDiagnostics`] — the structured error type
//!   [`crate::TemplateBank::try_add`] and
//!   [`crate::TemplateBank::builtin_checked`] reject ill-typed templates
//!   with, and the report currency of `xtask audit-templates`.
//!
//! Soundness contract (pinned by the prefilter property test in
//! `tests/property_tests.rs`): a template with a non-empty issue list fails
//! `try_instantiate` on *every* table under *every* RNG stream, and a table
//! failing `requirement.satisfied_by` fails instantiation of that template
//! under every RNG stream. The analyzers may under-approximate (miss a
//! defect, report a too-weak requirement) but never over-approximate.

use crate::program::{AnyTemplate, ProgramTemplate};
use crate::telemetry::KindSlot;
use arithexpr::AeTemplate;
use logicforms::LfTemplate;
use sqlexec::SqlTemplate;
use std::fmt;
use tabular::{AbsSummary, SchemaRequirement, TemplateAnalysis, TemplateIssue};

/// Diagnostic code used for templates whose surface text does not parse
/// (only reachable through [`analyze_text`] / the checked bank builders —
/// a parsed template can no longer have this issue).
pub const PARSE_ERROR: &str = "parse-error";

/// The static-analysis view of one template: which DSL it belongs to, its
/// dedup signature, the weakest schema requirement a table must meet, and
/// every type defect found.
#[derive(Debug, Clone)]
pub struct AnalyzedTemplate {
    pub kind: KindSlot,
    /// The template's dedup signature (or its raw source text when the
    /// template never parsed).
    pub signature: String,
    pub requirement: SchemaRequirement,
    pub issues: Vec<TemplateIssue>,
    /// Abstract-interpretation degeneracy convictions (`A001` constant
    /// output, `A002` dead branch, `A003` vacuous predicate). Kept apart
    /// from `issues`: a degenerate template still executes, it just cannot
    /// produce useful training signal.
    pub degeneracies: Vec<TemplateIssue>,
    /// The joined abstract summary over all hole assignments and tables.
    pub summary: AbsSummary,
    /// Static estimate of the probability one instantiation attempt
    /// survives the generation funnel (see `DESIGN.md`).
    pub survival: f64,
}

impl AnalyzedTemplate {
    /// Analyzes any program template through the trait layer.
    pub fn of(template: &dyn ProgramTemplate) -> AnalyzedTemplate {
        let TemplateAnalysis { issues, requirement, degeneracies, summary, survival } =
            template.analyze();
        AnalyzedTemplate {
            kind: template.kind(),
            signature: template.signature(),
            requirement,
            issues,
            degeneracies,
            summary,
            survival,
        }
    }

    /// No defects: the template may still fail on a given table at
    /// runtime, but not deterministically on every table.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// At least one abstract-interpretation conviction (A-rule).
    pub fn is_degenerate(&self) -> bool {
        !self.degeneracies.is_empty()
    }

    /// Degeneracy convictions as kind/signature-tagged diagnostics,
    /// mirroring [`Self::into_diagnostics`] for the audit pipeline.
    pub fn degeneracy_diagnostics(&self) -> TemplateDiagnostics {
        TemplateDiagnostics {
            diagnostics: self
                .degeneracies
                .iter()
                .map(|issue| TemplateDiagnostic {
                    kind: self.kind,
                    template: self.signature.clone(),
                    code: issue.code,
                    locus: issue.locus.clone(),
                    message: issue.message.clone(),
                })
                .collect(),
        }
    }

    /// Converts the issue list into kind/signature-tagged diagnostics
    /// (empty when clean).
    pub fn into_diagnostics(self) -> TemplateDiagnostics {
        let AnalyzedTemplate { kind, signature, issues, .. } = self;
        TemplateDiagnostics {
            diagnostics: issues
                .into_iter()
                .map(|issue| TemplateDiagnostic {
                    kind,
                    template: signature.clone(),
                    code: issue.code,
                    locus: issue.locus,
                    message: issue.message,
                })
                .collect(),
        }
    }
}

/// One template defect, tagged with the template it was found in. Renders
/// as `<kind>:<template>:<locus>: <message> (<code>)`; `xtask
/// audit-templates` prepends the source (builtin / mined file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateDiagnostic {
    pub kind: KindSlot,
    /// The offending template's signature (raw source text for parse
    /// failures).
    pub template: String,
    /// Stable kebab-case defect identifier (the ratchet key of
    /// `ci/template_health.json`).
    pub code: &'static str,
    /// The offending construct inside the template.
    pub locus: String,
    pub message: String,
}

impl fmt::Display for TemplateDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} ({})",
            self.kind.name(),
            self.template,
            self.locus,
            self.message,
            self.code
        )
    }
}

/// A non-empty batch of [`TemplateDiagnostic`]s — the error type of the
/// checked [`crate::TemplateBank`] constructors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TemplateDiagnostics {
    pub diagnostics: Vec<TemplateDiagnostic>,
}

impl TemplateDiagnostics {
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &TemplateDiagnostic> {
        self.diagnostics.iter()
    }
}

impl fmt::Display for TemplateDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for TemplateDiagnostics {}

/// Parses one template of `kind` from its surface text. A parse failure
/// becomes a [`PARSE_ERROR`] diagnostic rather than a panic, so callers
/// can fold parser and type errors into one report.
pub fn parse_any(kind: KindSlot, text: &str) -> Result<AnyTemplate, TemplateDiagnostic> {
    let parse_failure = |message: String| TemplateDiagnostic {
        kind,
        template: text.to_string(),
        code: PARSE_ERROR,
        locus: "parse".to_string(),
        message,
    };
    match kind {
        KindSlot::Sql => {
            SqlTemplate::parse(text).map(AnyTemplate::Sql).map_err(|e| parse_failure(e.to_string()))
        }
        KindSlot::Logic => LfTemplate::parse(text)
            .map(AnyTemplate::Logic)
            .map_err(|e| parse_failure(e.to_string())),
        KindSlot::Arith => AeTemplate::parse(text)
            .map(AnyTemplate::Arith)
            .map_err(|e| parse_failure(e.to_string())),
        KindSlot::None => {
            Err(parse_failure("the `none` slot holds no program templates".to_string()))
        }
    }
}

/// Parses and analyzes one template source line. Parse failures surface as
/// a single [`PARSE_ERROR`] issue with the raw text as the signature, so
/// audits can report malformed and ill-typed templates uniformly.
pub fn analyze_text(kind: KindSlot, text: &str) -> AnalyzedTemplate {
    match parse_any(kind, text) {
        Ok(t) => AnalyzedTemplate::of(t.as_program()),
        Err(d) => AnalyzedTemplate {
            kind,
            signature: d.template,
            requirement: SchemaRequirement::NONE,
            issues: vec![TemplateIssue::new(d.code, d.locus, d.message)],
            degeneracies: Vec::new(),
            summary: AbsSummary::TOP,
            survival: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzed_template_carries_kind_signature_and_requirement() {
        let a = analyze_text(KindSlot::Sql, "select c1 from w where c2 = val1");
        assert!(a.is_clean(), "{:?}", a.issues);
        assert_eq!(a.kind, KindSlot::Sql);
        assert_eq!(a.requirement.min_cols, 2);
        assert_eq!(a.requirement.min_rows, 1, "paired value hole needs a row to sample from");
    }

    #[test]
    fn trait_analyze_matches_per_crate_analyzers() {
        let sql = SqlTemplate::parse("select c1 from w order by c2_number desc limit 1")
            .unwrap_or_else(|e| panic!("sql: {e}"));
        assert_eq!(ProgramTemplate::analyze(&sql), sqlexec::analysis::analyze(&sql));
        let lf = LfTemplate::parse("eq { max { all_rows ; c1 } ; val1 }")
            .unwrap_or_else(|e| panic!("lf: {e}"));
        assert_eq!(ProgramTemplate::analyze(&lf), logicforms::analysis::analyze(&lf));
        let ae = AeTemplate::parse("table_sum( c1 )").unwrap_or_else(|e| panic!("ae: {e}"));
        assert_eq!(ProgramTemplate::analyze(&ae), arithexpr::analysis::analyze(&ae));
    }

    #[test]
    fn parse_failures_become_diagnostics() {
        let a = analyze_text(KindSlot::Logic, "eq { count {");
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, PARSE_ERROR);
        assert_eq!(a.signature, "eq { count {", "raw text stands in for the signature");
        assert!(a.requirement.is_trivial());

        let none = parse_any(KindSlot::None, "anything");
        assert_eq!(none.err().map(|d| d.code), Some(PARSE_ERROR));
    }

    #[test]
    fn diagnostics_render_kind_template_locus() {
        let a = analyze_text(KindSlot::Logic, "count { all_rows }");
        assert!(!a.is_clean());
        let diags = a.into_diagnostics();
        assert_eq!(diags.len(), 1);
        let rendered = diags.to_string();
        assert!(rendered.starts_with("logic:"), "{rendered}");
        assert!(rendered.contains("non-boolean-root"), "{rendered}");
    }

    #[test]
    fn clean_analysis_yields_empty_diagnostics() {
        let a = analyze_text(KindSlot::Arith, "subtract( val1 , val2 )");
        assert!(a.is_clean());
        let diags = a.clone().into_diagnostics();
        assert!(diags.is_empty());
        assert_eq!(diags, TemplateDiagnostics::default());
    }
}
