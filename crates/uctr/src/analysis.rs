//! Unified template static analysis: the cross-DSL layer over the
//! per-crate `analysis` modules (see `DESIGN.md` §7).
//!
//! Each executor crate ships an `analysis::analyze` function that
//! typechecks a parsed template *without a table* and computes the
//! [`SchemaRequirement`] a table must meet for instantiation to have any
//! chance of succeeding. This module stitches those per-DSL results into
//! one kind-tagged view:
//!
//! * [`AnalyzedTemplate`] — kind + dedup signature + requirement + issues,
//!   obtained from any [`ProgramTemplate`] via [`AnalyzedTemplate::of`] or
//!   from surface text via [`analyze_text`];
//! * [`TemplateDiagnostics`] — the structured error type
//!   [`crate::TemplateBank::try_add`] and
//!   [`crate::TemplateBank::builtin_checked`] reject ill-typed templates
//!   with, and the report currency of `xtask audit-templates`.
//!
//! Soundness contract (pinned by the prefilter property test in
//! `tests/property_tests.rs`): a template with a non-empty issue list fails
//! `try_instantiate` on *every* table under *every* RNG stream, and a table
//! failing `requirement.satisfied_by` fails instantiation of that template
//! under every RNG stream. The analyzers may under-approximate (miss a
//! defect, report a too-weak requirement) but never over-approximate.

use crate::mining::MergeRecord;
use crate::program::{AnyTemplate, GenScratch, ProgramTemplate};
use crate::sample::{AnswerKind, Label};
use crate::telemetry::KindSlot;
use crate::templates::TemplateBank;
use arithexpr::AeTemplate;
use logicforms::LfTemplate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlexec::SqlTemplate;
use std::fmt;
use tabular::{AbsSummary, ExecContext, SchemaRequirement, Table, TemplateAnalysis, TemplateIssue};

/// Diagnostic code used for templates whose surface text does not parse
/// (only reachable through [`analyze_text`] / the checked bank builders —
/// a parsed template can no longer have this issue).
pub const PARSE_ERROR: &str = "parse-error";

/// The static-analysis view of one template: which DSL it belongs to, its
/// dedup signature, the weakest schema requirement a table must meet, and
/// every type defect found.
#[derive(Debug, Clone)]
pub struct AnalyzedTemplate {
    pub kind: KindSlot,
    /// The template's dedup signature (or its raw source text when the
    /// template never parsed).
    pub signature: String,
    pub requirement: SchemaRequirement,
    pub issues: Vec<TemplateIssue>,
    /// Abstract-interpretation degeneracy convictions (`A001` constant
    /// output, `A002` dead branch, `A003` vacuous predicate). Kept apart
    /// from `issues`: a degenerate template still executes, it just cannot
    /// produce useful training signal.
    pub degeneracies: Vec<TemplateIssue>,
    /// The joined abstract summary over all hole assignments and tables.
    pub summary: AbsSummary,
    /// Static estimate of the probability one instantiation attempt
    /// survives the generation funnel (see `DESIGN.md`).
    pub survival: f64,
}

impl AnalyzedTemplate {
    /// Analyzes any program template through the trait layer.
    pub fn of(template: &dyn ProgramTemplate) -> AnalyzedTemplate {
        let TemplateAnalysis { issues, requirement, degeneracies, summary, survival } =
            template.analyze();
        AnalyzedTemplate {
            kind: template.kind(),
            signature: template.signature(),
            requirement,
            issues,
            degeneracies,
            summary,
            survival,
        }
    }

    /// No defects: the template may still fail on a given table at
    /// runtime, but not deterministically on every table.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// At least one abstract-interpretation conviction (A-rule).
    pub fn is_degenerate(&self) -> bool {
        !self.degeneracies.is_empty()
    }

    /// Degeneracy convictions as kind/signature-tagged diagnostics,
    /// mirroring [`Self::into_diagnostics`] for the audit pipeline.
    pub fn degeneracy_diagnostics(&self) -> TemplateDiagnostics {
        TemplateDiagnostics {
            diagnostics: self
                .degeneracies
                .iter()
                .map(|issue| TemplateDiagnostic {
                    kind: self.kind,
                    template: self.signature.clone(),
                    code: issue.code,
                    locus: issue.locus.clone(),
                    message: issue.message.clone(),
                })
                .collect(),
        }
    }

    /// Converts the issue list into kind/signature-tagged diagnostics
    /// (empty when clean).
    pub fn into_diagnostics(self) -> TemplateDiagnostics {
        let AnalyzedTemplate { kind, signature, issues, .. } = self;
        TemplateDiagnostics {
            diagnostics: issues
                .into_iter()
                .map(|issue| TemplateDiagnostic {
                    kind,
                    template: signature.clone(),
                    code: issue.code,
                    locus: issue.locus,
                    message: issue.message,
                })
                .collect(),
        }
    }
}

/// One template defect, tagged with the template it was found in. Renders
/// as `<kind>:<template>:<locus>: <message> (<code>)`; `xtask
/// audit-templates` prepends the source (builtin / mined file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateDiagnostic {
    pub kind: KindSlot,
    /// The offending template's signature (raw source text for parse
    /// failures).
    pub template: String,
    /// Stable kebab-case defect identifier (the ratchet key of
    /// `ci/template_health.json`).
    pub code: &'static str,
    /// The offending construct inside the template.
    pub locus: String,
    pub message: String,
}

impl fmt::Display for TemplateDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} ({})",
            self.kind.name(),
            self.template,
            self.locus,
            self.message,
            self.code
        )
    }
}

/// A non-empty batch of [`TemplateDiagnostic`]s — the error type of the
/// checked [`crate::TemplateBank`] constructors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TemplateDiagnostics {
    pub diagnostics: Vec<TemplateDiagnostic>,
}

impl TemplateDiagnostics {
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &TemplateDiagnostic> {
        self.diagnostics.iter()
    }
}

impl fmt::Display for TemplateDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for TemplateDiagnostics {}

/// Parses one template of `kind` from its surface text. A parse failure
/// becomes a [`PARSE_ERROR`] diagnostic rather than a panic, so callers
/// can fold parser and type errors into one report.
pub fn parse_any(kind: KindSlot, text: &str) -> Result<AnyTemplate, TemplateDiagnostic> {
    let parse_failure = |message: String| TemplateDiagnostic {
        kind,
        template: text.to_string(),
        code: PARSE_ERROR,
        locus: "parse".to_string(),
        message,
    };
    match kind {
        KindSlot::Sql => {
            SqlTemplate::parse(text).map(AnyTemplate::Sql).map_err(|e| parse_failure(e.to_string()))
        }
        KindSlot::Logic => LfTemplate::parse(text)
            .map(AnyTemplate::Logic)
            .map_err(|e| parse_failure(e.to_string())),
        KindSlot::Arith => AeTemplate::parse(text)
            .map(AnyTemplate::Arith)
            .map_err(|e| parse_failure(e.to_string())),
        KindSlot::None => {
            Err(parse_failure("the `none` slot holds no program templates".to_string()))
        }
    }
}

/// Parses and analyzes one template source line. Parse failures surface as
/// a single [`PARSE_ERROR`] issue with the raw text as the signature, so
/// audits can report malformed and ill-typed templates uniformly.
pub fn analyze_text(kind: KindSlot, text: &str) -> AnalyzedTemplate {
    match parse_any(kind, text) {
        Ok(t) => AnalyzedTemplate::of(t.as_program()),
        Err(d) => AnalyzedTemplate {
            kind,
            signature: d.template,
            requirement: SchemaRequirement::NONE,
            issues: vec![TemplateIssue::new(d.code, d.locus, d.message)],
            degeneracies: Vec::new(),
            summary: AbsSummary::TOP,
            survival: 0.0,
        },
    }
}

// ---------------------------------------------------------------------------
// Cross-template equivalence: differential witnesses, classes, subsumption.
// ---------------------------------------------------------------------------

/// Default number of per-table seeds the differential witness runs
/// (`xtask audit-equivalence` uses this value).
pub const WITNESS_SEEDS: u32 = 32;

/// The deterministic table zoo the differential witness executes over: the
/// two mining probe tables plus schema corner cases (single row, duplicate
/// values, all-numeric, numberless) so a merge must agree on degenerate
/// shapes too, not just the shape it was mined from.
pub fn witness_tables() -> Vec<Table> {
    // Every literal below is well-formed; a malformed one is silently
    // dropped here and caught by `the_witness_zoo_is_complete`.
    let t = |name: &str, rows: &[Vec<&str>]| Table::from_strings(name, rows).ok();
    [
        Some(crate::mining::sql_probe_table()),
        Some(crate::mining::fin_probe_table()),
        t("single", &[vec!["name", "score", "day"], vec!["Solo", "42", "2010-01-02"]]),
        t(
            "dupes",
            &[
                vec!["tag", "n", "m"],
                vec!["a", "5", "1"],
                vec!["a", "5", "2"],
                vec!["b", "7", "2"],
                vec!["b", "5", "3"],
            ],
        ),
        t(
            "numeric",
            &[
                vec!["x", "y", "z"],
                vec!["1", "10", "100"],
                vec!["2", "20", "200"],
                vec!["3", "30", "300"],
                vec!["4", "40", "400"],
                vec!["5", "50", "500"],
            ],
        ),
        t("textonly", &[vec!["name", "city"], vec!["Reds", "Oslo"], vec!["Blues", "Lima"]]),
    ]
    .into_iter()
    .flatten()
    .collect()
}

/// The observable outcome of one template run: exactly what a synthesized
/// sample's gold fields carry. The serialized program and the NL surface
/// are deliberately excluded — a merge changes the program's spelling, not
/// its behavior.
type RunOutput = (Label, AnswerKind, Vec<(usize, usize)>);

/// Runs one template once under a fixed seed, through the full
/// instantiate → execute → output path the pipeline drives.
fn run_once(
    t: &AnyTemplate,
    table: &Table,
    ctx: &ExecContext,
    seed: u64,
    scratch: &mut GenScratch,
) -> Option<RunOutput> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = t.as_program().try_instantiate(table, ctx, &mut rng, scratch).ok()?;
    if !inst.pre_executed() {
        inst.execute(table, ctx, scratch).ok()?;
    }
    let out = inst.output();
    let mut highlighted = out.highlighted;
    highlighted.sort_unstable();
    highlighted.dedup();
    Some((out.label, out.answer_kind, highlighted))
}

/// The result of differentially executing a pruned template against its
/// surviving class representative over [`witness_tables`] × `seeds`.
#[derive(Debug, Clone)]
pub struct MergeWitness {
    /// (table, seed) cells where both runs produced a sample.
    pub productive: usize,
    /// (table, seed) cells where both runs failed (also agreement: the
    /// funnel discards the attempt either way).
    pub both_failed: usize,
    /// First observed disagreement, if any.
    pub mismatch: Option<String>,
}

impl MergeWitness {
    /// A merge is verified when nothing disagreed *and* at least one cell
    /// actually produced output — all-failure runs witness nothing.
    pub fn verified(&self) -> bool {
        self.mismatch.is_none() && self.productive > 0
    }
}

/// Differentially executes `pruned` against `representative`: for every
/// witness table and every seed, both templates run under the *same* RNG
/// stream and must produce the same label, answer kind and highlighted
/// cell set — or both fail. This is the ground-truth check behind the
/// canonicalizer's draw-stream-preservation argument; `xtask
/// audit-equivalence` gates on every miner merge passing it.
pub fn verify_merge(
    pruned: &AnyTemplate,
    representative: &AnyTemplate,
    seeds: u32,
) -> MergeWitness {
    let mut witness = MergeWitness { productive: 0, both_failed: 0, mismatch: None };
    let mut scratch = GenScratch::default();
    for (ti, table) in witness_tables().iter().enumerate() {
        let ctx = ExecContext::new(table);
        for s in 0..seeds {
            let seed = ((ti as u64) << 32) | u64::from(s);
            let a = run_once(pruned, table, &ctx, seed, &mut scratch);
            let b = run_once(representative, table, &ctx, seed, &mut scratch);
            match (a, b) {
                (None, None) => witness.both_failed += 1,
                (Some(x), Some(y)) if x == y => witness.productive += 1,
                (a, b) => {
                    if witness.mismatch.is_none() {
                        witness.mismatch = Some(format!(
                            "table {ti} seed {seed}: pruned {:?} vs representative {:?}",
                            a.map(|o| o.0),
                            b.map(|o| o.0),
                        ));
                    }
                }
            }
        }
    }
    witness
}

/// Does `a` subsume `b`? Holds when `b` is redundant *as coverage*: every
/// table feasible for `b` is feasible for `a` (`b`'s requirement is the
/// stronger lattice point) and `a`'s abstract output summary encloses
/// `b`'s. A preorder — reflexive and transitive, not antisymmetric: two
/// distinct templates can subsume each other (equal requirement and
/// summary) without being equivalent.
pub fn subsumes(a: &AnalyzedTemplate, b: &AnalyzedTemplate) -> bool {
    b.requirement.implies(&a.requirement) && a.summary.contains(&b.summary)
}

/// One canonical-form equivalence class over a bank plus the miner's
/// pruned candidates.
#[derive(Debug, Clone)]
pub struct EquivalenceClass {
    /// Bank index of the surviving representative.
    pub representative: usize,
    /// The kind-prefixed canonical key shared by every member.
    pub canonical: String,
    /// Signatures of the pruned members (empty for singleton classes).
    pub pruned: Vec<String>,
}

/// The cross-template semantic report `xtask audit-equivalence` renders
/// and ratchets: canonical equivalence classes over a bank and its merge
/// records, differential verification of every merge, and the subsumption
/// preorder over class representatives.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// One class per admitted template, in bank insertion order.
    pub classes: Vec<EquivalenceClass>,
    /// Templates pruned per kind (`KindSlot as usize` for sql/logic/arith).
    pub pruned_per_kind: [usize; 3],
    /// Merges that passed the differential witness.
    pub verified_merges: usize,
    /// Merges that did not — must be zero (the audit's hard gate). Each
    /// failure is described in `failures`.
    pub unverified_merges: usize,
    pub failures: Vec<String>,
    /// Ordered representative pairs (a, b), a ≠ b, where `a` subsumes `b`.
    pub subsumption_edges: usize,
}

impl EquivalenceReport {
    /// Builds the report for `bank` and the merges its miner performed,
    /// running the differential witness `seeds` times per table per merge.
    pub fn over(bank: &TemplateBank, merges: &[MergeRecord], seeds: u32) -> EquivalenceReport {
        let mut classes: Vec<EquivalenceClass> = bank
            .canonical_keys()
            .iter()
            .enumerate()
            .map(|(i, key)| EquivalenceClass {
                representative: i,
                canonical: key.clone(),
                pruned: Vec::new(),
            })
            .collect();
        let mut pruned_per_kind = [0usize; 3];
        let mut verified = 0usize;
        let mut failures = Vec::new();
        for m in merges {
            if let Some(k) = pruned_per_kind.get_mut(m.kind as usize) {
                *k += 1;
            }
            classes[m.representative].pruned.push(m.pruned.as_program().signature());
            let witness = verify_merge(&m.pruned, &bank.templates()[m.representative], seeds);
            if witness.verified() {
                verified += 1;
            } else {
                failures.push(format!(
                    "{}: {} => {}: {}",
                    m.kind.name(),
                    m.pruned.as_program().signature(),
                    bank.templates()[m.representative].as_program().signature(),
                    witness.mismatch.unwrap_or_else(|| "no productive witness cell".to_string()),
                ));
            }
        }
        let analyses: Vec<AnalyzedTemplate> =
            bank.templates().iter().map(|t| AnalyzedTemplate::of(t.as_program())).collect();
        let mut subsumption_edges = 0usize;
        for (i, a) in analyses.iter().enumerate() {
            for (j, b) in analyses.iter().enumerate() {
                if i != j && subsumes(a, b) {
                    subsumption_edges += 1;
                }
            }
        }
        EquivalenceReport {
            classes,
            pruned_per_kind,
            verified_merges: verified,
            unverified_merges: failures.len(),
            failures,
            subsumption_edges,
        }
    }

    /// Total classes (one per admitted template).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Classes that absorbed at least one pruned template.
    pub fn merged_classes(&self) -> usize {
        self.classes.iter().filter(|c| !c.pruned.is_empty()).count()
    }

    /// Total templates pruned across kinds.
    pub fn pruned_total(&self) -> usize {
        self.pruned_per_kind.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzed_template_carries_kind_signature_and_requirement() {
        let a = analyze_text(KindSlot::Sql, "select c1 from w where c2 = val1");
        assert!(a.is_clean(), "{:?}", a.issues);
        assert_eq!(a.kind, KindSlot::Sql);
        assert_eq!(a.requirement.min_cols, 2);
        assert_eq!(a.requirement.min_rows, 1, "paired value hole needs a row to sample from");
    }

    #[test]
    fn trait_analyze_matches_per_crate_analyzers() {
        let sql = SqlTemplate::parse("select c1 from w order by c2_number desc limit 1")
            .unwrap_or_else(|e| panic!("sql: {e}"));
        assert_eq!(ProgramTemplate::analyze(&sql), sqlexec::analysis::analyze(&sql));
        assert_eq!(ProgramTemplate::canonicalize(&sql), sqlexec::canon::canonical_form(&sql));
        let lf = LfTemplate::parse("eq { max { all_rows ; c1 } ; val1 }")
            .unwrap_or_else(|e| panic!("lf: {e}"));
        assert_eq!(ProgramTemplate::analyze(&lf), logicforms::analysis::analyze(&lf));
        assert_eq!(ProgramTemplate::canonicalize(&lf), logicforms::canon::canonical_form(&lf));
        let ae = AeTemplate::parse("table_sum( c1 )").unwrap_or_else(|e| panic!("ae: {e}"));
        assert_eq!(ProgramTemplate::analyze(&ae), arithexpr::analysis::analyze(&ae));
        assert_eq!(ProgramTemplate::canonicalize(&ae), arithexpr::canon::canonical_form(&ae));
    }

    fn arith(text: &str) -> AnyTemplate {
        AnyTemplate::Arith(AeTemplate::parse(text).unwrap_or_else(|e| panic!("{text:?}: {e}")))
    }

    #[test]
    fn the_witness_zoo_is_complete() {
        // `witness_tables` drops malformed literals instead of panicking;
        // this pin guarantees none actually are.
        let names: Vec<String> = witness_tables().iter().map(|t| t.title.clone()).collect();
        assert_eq!(names, ["clubs", "financials", "single", "dupes", "numeric", "textonly"]);
    }

    #[test]
    fn verify_merge_confirms_true_merges() {
        // Commutative-operand sort: alpha-equal up to argument order.
        let w = verify_merge(&arith("add( val1 , 100 )"), &arith("add( 100 , val1 )"), 8);
        assert!(w.verified(), "{:?}", w.mismatch);
        assert!(w.productive > 0);
        // Symmetric root comparator swap.
        let a = AnyTemplate::Logic(
            LfTemplate::parse("eq { count { all_rows } ; val1 }").unwrap_or_else(|e| panic!("{e}")),
        );
        let b = AnyTemplate::Logic(
            LfTemplate::parse("eq { val1 ; count { all_rows } }").unwrap_or_else(|e| panic!("{e}")),
        );
        let w = verify_merge(&a, &b, 8);
        assert!(w.verified(), "{:?}", w.mismatch);
        // SQL comparison orientation flip.
        let a = AnyTemplate::Sql(
            SqlTemplate::parse("select c1 from w where val1 = c2")
                .unwrap_or_else(|e| panic!("{e}")),
        );
        let b = AnyTemplate::Sql(
            SqlTemplate::parse("select c1 from w where c2 = val1")
                .unwrap_or_else(|e| panic!("{e}")),
        );
        let w = verify_merge(&a, &b, 8);
        assert!(w.verified(), "{:?}", w.mismatch);
    }

    #[test]
    fn verify_merge_refutes_inequivalent_templates() {
        // Order matters under subtraction: the differential harness is a
        // real check, not a rubber stamp.
        let w = verify_merge(&arith("subtract( val1 , 100 )"), &arith("subtract( 100 , val1 )"), 8);
        assert!(!w.verified());
        assert!(w.mismatch.is_some());
    }

    #[test]
    fn subsumption_is_a_preorder_on_analyses() {
        let narrow = analyze_text(KindSlot::Sql, "select c1 from w where c2 = val1");
        let wide = analyze_text(KindSlot::Sql, "select c1 from w");
        for a in [&narrow, &wide] {
            assert!(subsumes(a, a), "subsumption is reflexive");
        }
        // The filtered lookup needs a strictly stronger schema, so the
        // unfiltered one can never subsume on coverage grounds alone
        // unless the requirement direction holds.
        assert!(narrow.requirement.implies(&wide.requirement));
        assert!(!wide.requirement.implies(&narrow.requirement));
        assert!(!subsumes(&narrow, &wide), "weaker-requirement template is not covered");
    }

    #[test]
    fn equivalence_report_classifies_verifies_and_gates() {
        use crate::mining::{MineOutcome, Miner};
        let fin = crate::mining::fin_probe_table();
        let clubs = crate::mining::sql_probe_table();
        let mut miner = Miner::new();
        assert_eq!(
            miner.mine_program(KindSlot::Arith, "add( the 2019 of Revenue , 100 )", &fin),
            MineOutcome::Mined
        );
        assert_eq!(
            miner.mine_program(KindSlot::Arith, "add( 100 , the 2019 of Revenue )", &fin),
            MineOutcome::EquivalentTo(0),
            "operand-swapped commutative program merges into the first admission"
        );
        assert_eq!(
            miner.mine_program(KindSlot::Logic, "eq { count { all_rows } ; 4 }", &clubs),
            MineOutcome::Mined
        );
        assert_eq!(
            miner.mine_program(KindSlot::Logic, "eq { 4 ; count { all_rows } }", &clubs),
            MineOutcome::EquivalentTo(1)
        );
        assert_eq!(miner.stats().kind(KindSlot::Arith).equivalent, 1);
        assert_eq!(miner.stats().kind(KindSlot::Logic).equivalent, 1);
        assert_eq!(miner.merges().len(), 2);
        let report = EquivalenceReport::over(miner.bank(), miner.merges(), 8);
        assert_eq!(report.class_count(), 2, "one class per admitted template");
        assert_eq!(report.pruned_total(), 2);
        assert_eq!(report.merged_classes(), 2);
        assert_eq!(report.verified_merges, 2);
        assert_eq!(report.unverified_merges, 0, "failures: {:?}", report.failures);
        assert!(report.classes.iter().all(|c| c.canonical.contains(':')));
    }

    #[test]
    fn parse_failures_become_diagnostics() {
        let a = analyze_text(KindSlot::Logic, "eq { count {");
        assert_eq!(a.issues.len(), 1);
        assert_eq!(a.issues[0].code, PARSE_ERROR);
        assert_eq!(a.signature, "eq { count {", "raw text stands in for the signature");
        assert!(a.requirement.is_trivial());

        let none = parse_any(KindSlot::None, "anything");
        assert_eq!(none.err().map(|d| d.code), Some(PARSE_ERROR));
    }

    #[test]
    fn diagnostics_render_kind_template_locus() {
        let a = analyze_text(KindSlot::Logic, "count { all_rows }");
        assert!(!a.is_clean());
        let diags = a.into_diagnostics();
        assert_eq!(diags.len(), 1);
        let rendered = diags.to_string();
        assert!(rendered.starts_with("logic:"), "{rendered}");
        assert!(rendered.contains("non-boolean-root"), "{rendered}");
    }

    #[test]
    fn clean_analysis_yields_empty_diagnostics() {
        let a = analyze_text(KindSlot::Arith, "subtract( val1 , val2 )");
        assert!(a.is_clean());
        let diags = a.clone().into_diagnostics();
        assert!(diags.is_empty());
        assert_eq!(diags, TemplateDiagnostics::default());
    }
}
