//! Text-To-Table operator (paper §IV-A, Eq. 6: `f(T, P) → T_expand`).
//!
//! The inverse of Table-To-Text: find a sentence in the table's surrounding
//! paragraph that describes a record matching the table's schema, extract
//! the record (pattern/alignment-based information extraction, the
//! reproduction's stand-in for the seq2seq text-to-table model of Wu et al.
//! \[52\]), and append it to the table to form an expanded table. The paper's
//! row-name filtering step is implemented by requiring an extractable
//! entity and at least one value for a known column.

use crate::table_to_text::entity_column;
use tabular::text::split_sentences;
use tabular::{Table, Value};

/// A record extracted from one sentence: entity name plus (column → value)
/// assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedRecord {
    pub entity: String,
    /// `(column index, value)` pairs, excluding the entity column.
    pub fields: Vec<(usize, Value)>,
}

/// Extracts a record from a sentence given the target schema. Handles the
/// phrasing families produced by `describe_row` and by the corpora's
/// context generator:
///
/// * `"<entity> has a <col> of <val>[, a <col> of <val>][ and a <col> of <val>]."`
/// * `"<entity> has <col> equal to <val> ..."`
/// * `"The <col> of <entity> is <val>."`
pub fn extract_record(sentence: &str, table: &Table) -> Option<ExtractedRecord> {
    let s = sentence.trim().trim_end_matches(['.', '!', '?']);
    let lower = s.to_lowercase();
    // Column mentions sorted by position.
    let mut mentions: Vec<(usize, usize, usize)> = Vec::new(); // (start, len, col_idx)
    for (ci, col) in table.schema().columns().iter().enumerate() {
        let cname = col.name.to_lowercase();
        if cname.is_empty() {
            continue;
        }
        let mut from = 0usize;
        while let Some(pos) = lower[from..].find(&cname) {
            let start = from + pos;
            mentions.push((start, cname.len(), ci));
            from = start + cname.len();
        }
    }
    if mentions.is_empty() {
        return None;
    }
    mentions.sort_unstable();
    // Drop overlapping mentions (keep the longest at each position).
    let mut kept: Vec<(usize, usize, usize)> = Vec::new();
    for m in mentions {
        match kept.last() {
            Some(&(ls, ll, _)) if m.0 < ls + ll => {
                if m.1 > ll {
                    kept.pop();
                    kept.push(m);
                }
            }
            _ => kept.push(m),
        }
    }

    let ecol = entity_column(table);
    // Entity: prefer "the <col> of <entity> is" frame, else sentence subject.
    let mut entity: Option<String> = None;
    let mut fields: Vec<(usize, Value)> = Vec::new();

    for (i, &(start, len, ci)) in kept.iter().enumerate() {
        let after_start = start + len;
        let after_end = kept.get(i + 1).map(|&(s2, _, _)| s2).unwrap_or(s.len());
        let after = &s[after_start..after_end.min(s.len())];
        if ci == ecol {
            // "the <entity-col> of X is ..." doesn't occur; entity handled below.
            continue;
        }
        if let Some(v) = value_after(after) {
            fields.push((ci, v));
        }
    }

    // Sentence subject = tokens before "has" / "recorded" / "'s".
    if entity.is_none() {
        if let Some(pos) = lower.find(" has ") {
            let subject = s[..pos].trim();
            let subject =
                subject.trim_start_matches("In ").split(',').next_back().unwrap_or(subject).trim();
            if !subject.is_empty() {
                entity = Some(subject.to_string());
            }
        }
    }
    // "The <col> of <entity> is <val>" frame.
    if entity.is_none() {
        if let Some(of_pos) = lower.find(" of ") {
            if let Some(is_pos) = lower[of_pos..].find(" is ") {
                let candidate = s[of_pos + 4..of_pos + is_pos].trim();
                if !candidate.is_empty() {
                    entity = Some(candidate.to_string());
                }
            }
        }
    }

    let entity = entity?;
    if fields.is_empty() {
        return None;
    }
    Some(ExtractedRecord { entity, fields })
}

/// Parses the value phrase following a column mention: skips connective
/// tokens (`of`, `is`, `was`, `equal`, `to`, `a`, `:`), then takes tokens up
/// to a delimiter (`,`, `and`, end).
fn value_after(after: &str) -> Option<Value> {
    let cleaned = after.trim_start_matches([':', ' ']);
    let mut toks = cleaned.split_whitespace().peekable();
    while let Some(&t) = toks.peek() {
        let tl = t.to_lowercase();
        if ["of", "is", "was", "equal", "to", "a", "an", "the"].contains(&tl.as_str()) {
            toks.next();
        } else {
            break;
        }
    }
    let mut value_toks: Vec<&str> = Vec::new();
    for t in toks {
        let stripped = t.trim_end_matches([',', ';']);
        let tl = stripped.to_lowercase();
        if tl == "and" || tl == "with" || tl.is_empty() {
            break;
        }
        value_toks.push(stripped);
        if t.ends_with(',') {
            break;
        }
        if value_toks.len() >= 4 {
            break;
        }
    }
    if value_toks.is_empty() {
        return None;
    }
    let text = value_toks.join(" ");
    let v = Value::parse(&text);
    if v.is_null() {
        None
    } else {
        Some(v)
    }
}

/// The result of one Text-To-Table application.
#[derive(Debug, Clone)]
pub struct ExpandResult {
    /// The table with the extracted record appended.
    pub expanded: Table,
    /// Which sentence (index into the split paragraph) was consumed.
    pub sentence_index: usize,
    /// The extracted record.
    pub record: ExtractedRecord,
}

/// Scans the paragraph for the first sentence describing a record that fits
/// the table's schema and is *not already present*, and appends it.
pub fn text_to_table(table: &Table, paragraph: &str) -> Option<ExpandResult> {
    let sentences = split_sentences(paragraph);
    let ecol = entity_column(table);
    for (si, sentence) in sentences.iter().enumerate() {
        let Some(record) = extract_record(sentence, table) else { continue };
        // Row-name filter: skip records whose entity already has a row.
        let entity_val = Value::text(record.entity.clone());
        let exists = (0..table.n_rows())
            .any(|r| table.cell(r, ecol).is_some_and(|v| v.loosely_equals(&entity_val)));
        if exists {
            continue;
        }
        // Require at least half of the non-entity columns to be filled —
        // sparse extractions create unusable rows.
        let needed = (table.n_cols().saturating_sub(1)).div_ceil(2);
        if record.fields.len() < needed.max(1) {
            continue;
        }
        let mut row = vec![Value::Null; table.n_cols()];
        row[ecol] = entity_val;
        for (ci, v) in &record.fields {
            row[*ci] = v.clone();
        }
        let mut expanded = table.clone();
        expanded.push_row(row).ok()?;
        expanded.reinfer_types();
        return Some(ExpandResult { expanded, sentence_index: si, record });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::from_strings(
            "Departments",
            &[
                vec!["department", "total deputies", "budget"],
                vec!["Commerce", "18", "500"],
                vec!["Defense", "42", "9000"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"))
    }

    #[test]
    fn extract_describe_row_style() {
        let r = extract_record("Energy has a total deputies of 12 and a budget of 700.", &table())
            .unwrap_or_else(|| panic!("extract_record"));
        assert_eq!(r.entity, "Energy");
        assert_eq!(r.fields.len(), 2);
        assert_eq!(r.fields[0], (1, Value::Number(12.0)));
        assert_eq!(r.fields[1], (2, Value::Number(700.0)));
    }

    #[test]
    fn extract_equal_to_style() {
        let r = extract_record(
            "Energy has total deputies equal to 12 and budget equal to 700.",
            &table(),
        )
        .unwrap_or_else(|| panic!("extract_record"));
        assert_eq!(r.entity, "Energy");
        assert_eq!(r.fields.len(), 2);
    }

    #[test]
    fn extract_with_title_prefix() {
        let r = extract_record(
            "In Departments, Energy has a total deputies of 12 and a budget of 700.",
            &table(),
        )
        .unwrap_or_else(|| panic!("extract_record"));
        assert_eq!(r.entity, "Energy");
    }

    #[test]
    fn extract_fails_without_columns() {
        assert!(extract_record("Energy is a nice department to work for.", &table()).is_none());
    }

    #[test]
    fn expansion_appends_row() {
        let p = "The department was reorganized in 1977. Energy has a total deputies of 12 and a budget of 700. Funding grew later.";
        let r = text_to_table(&table(), p).unwrap_or_else(|| panic!("text_to_table"));
        assert_eq!(r.expanded.n_rows(), 3);
        assert_eq!(r.sentence_index, 1);
        let last = r.expanded.row(2).unwrap_or_else(|| panic!("row 2"));
        assert_eq!(last[0].to_string(), "Energy");
        assert_eq!(last[1], Value::Number(12.0));
    }

    #[test]
    fn expansion_skips_existing_entities() {
        let p = "Defense has a total deputies of 42 and a budget of 9000.";
        assert!(text_to_table(&table(), p).is_none());
    }

    #[test]
    fn expansion_requires_enough_fields() {
        let p = "Energy has a budget of 700.";
        // only 1 of 2 non-entity fields -> exactly the threshold (ceil(2/2)=1)
        let r = text_to_table(&table(), p);
        assert!(r.is_some());
        let p2 = "Energy also exists.";
        assert!(text_to_table(&table(), p2).is_none());
    }

    #[test]
    fn expanded_types_reinferred() {
        let p = "Energy has a total deputies of 12 and a budget of 700.";
        let r = text_to_table(&table(), p).unwrap_or_else(|| panic!("text_to_table"));
        let col = r.expanded.schema().column(1).unwrap_or_else(|| panic!("column 1"));
        assert_eq!(col.ty, tabular::ColumnType::Number);
    }

    #[test]
    fn roundtrip_with_describe_row() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let full = Table::from_strings(
            "Departments",
            &[
                vec!["department", "total deputies", "budget"],
                vec!["Commerce", "18", "500"],
                vec!["Defense", "42", "9000"],
                vec!["Energy", "12", "700"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let mut rng = StdRng::seed_from_u64(7);
        // Split Energy out, then recover it from the sentence.
        let split = crate::table_to_text::table_to_text(&full, 2, &mut rng)
            .unwrap_or_else(|| panic!("table_to_text"));
        let restored = text_to_table(&split.sub_table, &split.sentence)
            .unwrap_or_else(|| panic!("text_to_table"));
        assert_eq!(restored.expanded.n_rows(), 3);
        let recovered = restored.expanded.row(2).unwrap_or_else(|| panic!("row 2"));
        assert_eq!(recovered[0].to_string(), "Energy");
        assert_eq!(recovered[1], Value::Number(12.0));
        assert_eq!(recovered[2], Value::Number(700.0));
    }
}
