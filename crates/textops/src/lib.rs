//! # textops — Table-To-Text and Text-To-Table operators
//!
//! UCTR's two novel operators for joint table-text reasoning (paper §III):
//! [`table_to_text()`] splits a table into a sub-table plus a sentence
//! verbalizing one highlighted row (with the paper's faithfulness filter),
//! and [`text_to_table()`] extracts a record from the table's surrounding
//! paragraph and integrates it as a new row, producing an expanded table.
//!
//! ```
//! use tabular::Table;
//! use textops::text_to_table;
//!
//! let t = Table::from_strings("deps", &[
//!     vec!["department", "budget"],
//!     vec!["Commerce", "500"],
//! ]).unwrap();
//! let out = text_to_table(&t, "Energy has a budget of 700.").unwrap();
//! assert_eq!(out.expanded.n_rows(), 2);
//! ```

pub mod table_to_text;
pub mod text_to_table;

pub use table_to_text::{
    describe_row, describe_row_with, entity_column, is_faithful, is_faithful_with, table_to_text,
    table_to_text_with, SplitResult, TextScratch,
};
pub use text_to_table::{extract_record, text_to_table, ExpandResult, ExtractedRecord};
