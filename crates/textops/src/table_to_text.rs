//! Table-To-Text operator (paper §IV-A, Eq. 5: `f(T) → T_sub, S`).
//!
//! Follows MQA-QG's `DescribeEnt`: one table row is verbalized into a
//! natural-language sentence, and the row is removed from the table. The
//! paper adds a *filtering step* — "if important information in the table
//! is missing from the generated sentence, we will discard it" — which is
//! implemented here as a faithfulness check that every non-null cell value
//! of the row is recoverable from the sentence.

use rand::Rng;
use std::fmt::Write as _;
use tabular::{ColumnType, Table, Value};

/// Index of the column that names the row's entity: the first text column,
/// else column 0.
pub fn entity_column(table: &Table) -> usize {
    table.schema().columns().iter().position(|c| c.ty == ColumnType::Text).unwrap_or(0)
}

/// Reusable buffers for the streaming Table-To-Text entry points
/// ([`describe_row_with`], [`is_faithful_with`], [`table_to_text_with`]).
/// One per worker, reused across samples.
#[derive(Debug, Clone, Default)]
pub struct TextScratch {
    facts: String,
    lower: String,
    cell: String,
    cell_lower: String,
    keep: Vec<usize>,
}

/// Verbalizes a row into a sentence ("Defense has a total deputies of 42
/// and a budget of 9000.").
pub fn describe_row(table: &Table, row: usize, rng: &mut impl Rng) -> Option<String> {
    let mut out = String::new();
    describe_row_with(table, row, rng, &mut TextScratch::default(), &mut out).then_some(out)
}

/// [`describe_row`] through caller-owned buffers: the sentence is written
/// into `out` (cleared first) and `true` is returned, or `false` when the
/// row cannot be verbalized. Draw-for-draw identical to [`describe_row`].
pub fn describe_row_with(
    table: &Table,
    row: usize,
    rng: &mut impl Rng,
    scratch: &mut TextScratch,
    out: &mut String,
) -> bool {
    let Some(cells) = table.row(row) else { return false };
    let ecol = entity_column(table);
    let Some(entity) = cells.get(ecol).filter(|v| !v.is_null()) else { return false };
    // Stream the facts ", "-separated, remembering the final separator so
    // it can be widened to " and " afterwards — same surface text as the
    // old join-then-format construction.
    let facts = &mut scratch.facts;
    facts.clear();
    let mut n_facts = 0usize;
    let mut last_sep = 0usize;
    for (ci, v) in cells.iter().enumerate() {
        if ci == ecol || v.is_null() {
            continue;
        }
        let Some(col) = table.column_name(ci) else { return false };
        if n_facts > 0 {
            last_sep = facts.len();
            facts.push_str(", ");
        }
        let _ = match rng.gen_range(0..3) {
            0 => write!(facts, "a {col} of {v}"),
            1 => write!(facts, "a recorded {col} of {v}"),
            _ => write!(facts, "{col} equal to {v}"),
        };
        n_facts += 1;
    }
    if n_facts == 0 {
        return false;
    }
    if n_facts > 1 {
        facts.replace_range(last_sep..last_sep + 2, " and ");
    }
    out.clear();
    let _ = match rng.gen_range(0..2) {
        0 => write!(out, "{entity} has {facts}."),
        _ => write!(out, "In {}, {entity} has {facts}.", table.title),
    };
    true
}

/// The faithfulness filter: true when every non-null cell value of `row`
/// appears in `sentence` (so no table information was lost by generation).
pub fn is_faithful(table: &Table, row: usize, sentence: &str) -> bool {
    is_faithful_with(table, row, sentence, &mut TextScratch::default())
}

/// [`is_faithful`] through caller-owned buffers (no per-call allocation).
pub fn is_faithful_with(
    table: &Table,
    row: usize,
    sentence: &str,
    scratch: &mut TextScratch,
) -> bool {
    let Some(cells) = table.row(row) else { return false };
    let TextScratch { lower, cell, cell_lower, .. } = scratch;
    lower.clear();
    lower.extend(sentence.chars().flat_map(char::to_lowercase));
    cells.iter().all(|v| match v {
        Value::Null => true,
        other => {
            cell.clear();
            let _ = write!(cell, "{other}");
            cell_lower.clear();
            cell_lower.extend(cell.chars().flat_map(char::to_lowercase));
            lower.contains(cell_lower.as_str())
        }
    })
}

/// The result of one Table-To-Text application.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// The table minus the verbalized row.
    pub sub_table: Table,
    /// The generated sentence.
    pub sentence: String,
    /// The entity name of the removed row (useful for linking).
    pub entity: String,
}

/// Applies the operator to the row containing `highlight_row` (one of the
/// execution's highlighted cells, per §III-A). Returns `None` when the row
/// cannot be verbalized faithfully — the paper's filtering step.
pub fn table_to_text(
    table: &Table,
    highlight_row: usize,
    rng: &mut impl Rng,
) -> Option<SplitResult> {
    table_to_text_with(table, highlight_row, rng, &mut TextScratch::default())
}

/// [`table_to_text`] through caller-owned buffers. The returned
/// [`SplitResult`] still owns its strings (they outlive the scratch), but
/// all intermediate fact/lowercase/index buffers come from `scratch`.
pub fn table_to_text_with(
    table: &Table,
    highlight_row: usize,
    rng: &mut impl Rng,
    scratch: &mut TextScratch,
) -> Option<SplitResult> {
    if table.n_rows() < 2 {
        return None; // splitting a 1-row table leaves no table evidence
    }
    let mut sentence = String::new();
    if !describe_row_with(table, highlight_row, rng, scratch, &mut sentence) {
        return None;
    }
    if !is_faithful_with(table, highlight_row, &sentence, scratch) {
        return None;
    }
    let ecol = entity_column(table);
    let entity = table.cell(highlight_row, ecol)?.to_string();
    let keep = &mut scratch.keep;
    keep.clear();
    keep.extend((0..table.n_rows()).filter(|&r| r != highlight_row));
    let sub_table = table.select_rows(keep);
    Some(SplitResult { sub_table, sentence, entity })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Table {
        Table::from_strings(
            "Departments",
            &[
                vec!["department", "total deputies", "budget"],
                vec!["Commerce", "18", "500"],
                vec!["Defense", "42", "9000"],
                vec!["Treasury", "30", "3000"],
            ],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"))
    }

    #[test]
    fn describe_row_mentions_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = describe_row(&table(), 1, &mut rng).unwrap_or_else(|| panic!("describe_row"));
        assert!(s.contains("Defense"), "{s}");
        assert!(s.contains("42"), "{s}");
        assert!(s.contains("9000"), "{s}");
        assert!(s.contains("total deputies"), "{s}");
    }

    #[test]
    fn split_removes_row_and_keeps_rest() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = table_to_text(&table(), 1, &mut rng).unwrap_or_else(|| panic!("table_to_text"));
        assert_eq!(r.sub_table.n_rows(), 2);
        assert_eq!(r.entity, "Defense");
        assert!(!r.sub_table.rows().iter().any(|row| row[0].to_string() == "Defense"));
        assert!(r.sentence.contains("Defense"));
    }

    #[test]
    fn faithfulness_checker() {
        let t = table();
        assert!(is_faithful(&t, 0, "Commerce has a total deputies of 18 and a budget of 500."));
        assert!(!is_faithful(&t, 0, "Commerce has a budget of 500.")); // 18 missing
    }

    #[test]
    fn single_row_table_not_splittable() {
        let t = Table::from_strings("t", &[vec!["a", "b"], vec!["x", "1"]])
            .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let mut rng = StdRng::seed_from_u64(3);
        assert!(table_to_text(&t, 0, &mut rng).is_none());
    }

    #[test]
    fn row_with_null_entity_not_describable() {
        let t = Table::from_strings("t", &[vec!["name", "v"], vec!["", "1"], vec!["x", "2"]])
            .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let mut rng = StdRng::seed_from_u64(4);
        assert!(describe_row(&t, 0, &mut rng).is_none());
        assert!(describe_row(&t, 1, &mut rng).is_some());
    }

    #[test]
    fn entity_column_prefers_text() {
        let t = Table::from_strings(
            "t",
            &[vec!["score", "player"], vec!["10", "alice"], vec!["20", "bob"]],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"));
        assert_eq!(entity_column(&t), 1);
    }

    #[test]
    fn nulls_skipped_in_description() {
        let t = Table::from_strings(
            "t",
            &[vec!["name", "a", "b"], vec!["x", "", "7"], vec!["y", "1", "2"]],
        )
        .unwrap_or_else(|e| panic!("test table: {e:?}"));
        let mut rng = StdRng::seed_from_u64(5);
        let s = describe_row(&t, 0, &mut rng).unwrap_or_else(|| panic!("describe_row"));
        assert!(s.contains('7'), "{s}");
        assert!(is_faithful(&t, 0, &s));
    }
}
