//! Integration tests for the model/metric layer against the generated
//! corpora: metric edge cases, retriever/FEVEROUS-score coupling, and the
//! few-shot recipe.

// Integration-test helpers run outside #[cfg(test)], so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used)]

use models::{
    em_f1, exact_match, feverous_score, label_accuracy, numeracy_f1, EvidenceView, QaModel,
    TrainConfig, VerdictSpace, VerifierModel,
};
use uctr::{Sample, Verdict};

#[test]
fn metric_edge_cases() {
    // EM: normalization of articles, case, numbers.
    assert!(exact_match("The Red Lions", "red lions"));
    assert!(exact_match("42.0", "42"));
    assert!(!exact_match("", "42"));
    // numeracy F1: numbers all-or-nothing, text graded.
    assert_eq!(numeracy_f1("42", "43"), 0.0);
    assert_eq!(numeracy_f1("42", "42.0"), 1.0);
    assert!(numeracy_f1("red lions oslo", "red lions kyiv") > 0.0);
    // empty sets
    assert_eq!(em_f1(&[]), (0.0, 0.0));
    assert_eq!(label_accuracy(&[]), 0.0);
}

#[test]
fn feverous_score_never_exceeds_label_accuracy() {
    let b = corpora::feverous_like(corpora::CorpusConfig::tiny());
    let dev: Vec<Sample> = b
        .gold
        .dev
        .iter()
        .filter(|s| s.label.as_verdict() != Some(Verdict::Unknown))
        .cloned()
        .collect();
    let model = VerifierModel::train(&b.gold.train, VerdictSpace::TwoWay, EvidenceView::Full);
    let preds: Vec<Verdict> = dev.iter().map(|s| model.predict(s)).collect();
    let fs = feverous_score(&dev, &preds);
    let pairs: Vec<(Verdict, Verdict)> =
        preds.iter().zip(&dev).map(|(p, s)| (*p, s.label.as_verdict().unwrap())).collect();
    let acc = label_accuracy(&pairs);
    assert!(fs <= acc + 1e-9, "FEVEROUS score {fs} > accuracy {acc}");
}

#[test]
fn few_shot_plus_synthetic_at_least_few_shot() {
    let b = corpora::tatqa_like(corpora::CorpusConfig {
        n_tables: 80,
        train_per_table: 8,
        eval_per_table: 8,
        seed: 21,
    });
    let synth = uctr::UctrPipeline::new(uctr::UctrConfig::qa()).generate(&b.unlabeled);
    let shots: Vec<Sample> = b.gold.train.iter().take(50).cloned().collect();
    let few_only = QaModel::train(&shots);
    let mut pretrained = QaModel::train(&synth);
    pretrained.fine_tune(&shots, TrainConfig { epochs: 4, ..TrainConfig::default() });
    let em = |m: &QaModel| {
        b.gold
            .dev
            .iter()
            .filter(|s| {
                tabular::text::normalize_answer(&m.predict(s))
                    == tabular::text::normalize_answer(s.label.as_answer().unwrap())
            })
            .count() as f64
            / b.gold.dev.len() as f64
    };
    let with_synth = em(&pretrained);
    let without = em(&few_only);
    assert!(
        with_synth + 0.03 >= without,
        "pretraining hurt badly: {with_synth:.3} vs {without:.3}"
    );
}

#[test]
fn verifier_handles_all_three_verdicts() {
    let b = corpora::semtab_like(corpora::CorpusConfig {
        n_tables: 80,
        train_per_table: 8,
        eval_per_table: 8,
        seed: 31,
    });
    let model = VerifierModel::train(&b.gold.train, VerdictSpace::ThreeWay, EvidenceView::Full);
    let mut seen = std::collections::BTreeSet::new();
    for s in &b.gold.dev {
        seen.insert(format!("{}", model.predict(s)));
    }
    // The trained model must actually use at least the two main classes.
    assert!(seen.contains("Supported") && seen.contains("Refuted"), "{seen:?}");
}

#[test]
fn qa_model_answers_are_always_from_candidates() {
    let b = corpora::wikisql_like(corpora::CorpusConfig::tiny());
    let model = QaModel::train(&b.gold.train);
    for s in b.gold.dev.iter().take(30) {
        let pred = model.predict(s);
        let cands = models::generate_candidates(s);
        assert!(cands.iter().any(|c| c.text == pred), "prediction `{pred}` not among candidates");
    }
}

#[test]
fn retriever_budget_respected() {
    let b = corpora::feverous_like(corpora::CorpusConfig::tiny());
    for s in b.gold.dev.iter().take(30) {
        assert!(models::retrieve_cells(s).len() <= 8);
    }
}
