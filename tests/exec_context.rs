//! ExecContext equivalence suite.
//!
//! The per-table [`ExecContext`] caches (column value pools, numeric cell
//! grids, addressable cells, lowercase row names) replace naive table
//! scans inside the three executors. These tests pin the contract: for any
//! table and any RNG seed, the `*_in` context paths must return the exact
//! result of the naive paths AND consume the exact same RNG draws — the
//! pipeline's fixed-seed byte-identity depends on both.

// Integration-test helpers run outside #[cfg(test)], so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used)]

use arithexpr::AeTemplate;
use logicforms::LfTemplate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlexec::SqlTemplate;
use tabular::{ExecContext, Table};
use uctr::{BUILTIN_ARITH, BUILTIN_LOGIC, BUILTIN_SQL};

/// A randomized mixed-type table: text name/category columns, numeric
/// columns, and random null holes ("-" parses to null).
fn random_table(rng: &mut StdRng, rows: usize) -> Table {
    let header = ["name", "score", "tier", "load", "note"];
    let mut grid: Vec<Vec<String>> = vec![header.iter().map(|s| s.to_string()).collect()];
    let tiers = ["gold", "silver", "bronze", "iron"];
    let notes = ["fresh", "stale", "Fresh", "-"];
    for i in 0..rows {
        let name = if rng.gen_bool(0.1) { "-".to_string() } else { format!("ent{i}") };
        let score =
            if rng.gen_bool(0.15) { "-".to_string() } else { rng.gen_range(0..500).to_string() };
        let tier = tiers[rng.gen_range(0..tiers.len())].to_string();
        let load = if rng.gen_bool(0.15) {
            "-".to_string()
        } else {
            format!("{:.1}", rng.gen_range(0.0..90.0))
        };
        let note = notes[rng.gen_range(0..notes.len())].to_string();
        grid.push(vec![name, score, tier, load, note]);
    }
    let borrowed: Vec<Vec<&str>> =
        grid.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
    Table::from_strings("random", &borrowed).unwrap()
}

/// Asserts both RNG clones are in the same state by comparing their next
/// draws (catches paths that consume a different number of draws).
fn assert_rngs_aligned(a: &mut StdRng, b: &mut StdRng, what: &str) {
    for _ in 0..4 {
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "RNG streams diverged after {what}");
    }
}

#[test]
fn sql_instantiation_matches_naive_path() {
    let mut meta = StdRng::seed_from_u64(0xDECAF);
    for round in 0..20 {
        let table = random_table(&mut meta, 3 + (round % 12));
        let ctx = ExecContext::new(&table);
        for (ti, t) in BUILTIN_SQL.iter().enumerate() {
            let tpl = SqlTemplate::parse(t).unwrap();
            let mut naive_rng = StdRng::seed_from_u64(round as u64 * 100 + ti as u64);
            let mut ctx_rng = naive_rng.clone();
            let naive = tpl.try_instantiate(&table, &mut naive_rng);
            let cached = tpl.try_instantiate_in(&table, &ctx, &mut ctx_rng);
            assert_eq!(
                format!("{naive:?}"),
                format!("{cached:?}"),
                "sql template `{t}` diverged on round {round}"
            );
            assert_rngs_aligned(&mut naive_rng, &mut ctx_rng, "sql instantiation");
        }
    }
}

#[test]
fn logic_instantiation_and_evaluation_match_naive_path() {
    let mut meta = StdRng::seed_from_u64(0xBEEF);
    for round in 0..12 {
        let table = random_table(&mut meta, 4 + (round % 10));
        let ctx = ExecContext::new(&table);
        for (ti, t) in BUILTIN_LOGIC.iter().enumerate() {
            let tpl = LfTemplate::parse(t).unwrap();
            for desired in [true, false] {
                let mut naive_rng = StdRng::seed_from_u64(round as u64 * 1000 + ti as u64);
                let mut ctx_rng = naive_rng.clone();
                let naive = tpl.try_instantiate(&table, &mut naive_rng, desired);
                let cached = tpl.try_instantiate_in(&table, &ctx, &mut ctx_rng, desired);
                assert_eq!(
                    format!("{naive:?}"),
                    format!("{cached:?}"),
                    "lf template `{t}` (desired={desired}) diverged on round {round}"
                );
                assert_rngs_aligned(&mut naive_rng, &mut ctx_rng, "lf instantiation");
                // Evaluation parity (outcome AND highlighted cells) on every
                // successfully instantiated claim.
                if let Ok(claim) = naive {
                    let a = logicforms::evaluate(&claim.expr, &table);
                    let b = logicforms::evaluate_in(&claim.expr, &table, &ctx);
                    assert_eq!(a, b, "lf evaluation diverged for `{}`", claim.expr);
                    let ta = logicforms::evaluate_truth(&claim.expr, &table);
                    let tb = logicforms::evaluate_truth_in(&claim.expr, &table, &ctx);
                    assert_eq!(ta, tb);
                }
            }
        }
    }
}

#[test]
fn arith_instantiation_and_execution_match_naive_path() {
    let mut meta = StdRng::seed_from_u64(0xF00D);
    for round in 0..20 {
        let table = random_table(&mut meta, 3 + (round % 12));
        let ctx = ExecContext::new(&table);
        for (ti, t) in BUILTIN_ARITH.iter().enumerate() {
            let tpl = AeTemplate::parse(t).unwrap();
            let mut naive_rng = StdRng::seed_from_u64(round as u64 * 77 + ti as u64);
            let mut ctx_rng = naive_rng.clone();
            let naive = tpl.try_instantiate(&table, &mut naive_rng);
            let cached = tpl.try_instantiate_in(&table, &ctx, &mut ctx_rng);
            assert_eq!(
                format!("{naive:?}"),
                format!("{cached:?}"),
                "ae template `{t}` diverged on round {round}"
            );
            assert_rngs_aligned(&mut naive_rng, &mut ctx_rng, "ae instantiation");
            if let Ok(inst) = naive {
                let a = arithexpr::execute(&inst.program, &table);
                let b = arithexpr::execute_in(&inst.program, &table, &ctx);
                assert_eq!(a, b, "ae execution diverged for `{}`", inst.program);
            }
        }
    }
}

#[test]
fn context_caches_match_naive_scans_on_random_tables() {
    let mut meta = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..25 {
        let rows = 1 + meta.gen_range(0..40);
        let table = random_table(&mut meta, rows);
        let ctx = ExecContext::new(&table);
        assert_eq!(ctx.n_rows(), table.n_rows());
        assert_eq!(ctx.n_cols(), table.n_cols());
        for ci in 0..table.n_cols() {
            let naive: Vec<_> =
                table.column_values(ci).into_iter().filter(|v| !v.is_null()).collect();
            assert_eq!(ctx.non_null_values(ci), naive.as_slice());
        }
        for ri in 0..table.n_rows() {
            for ci in 0..table.n_cols() {
                assert_eq!(
                    ctx.number_at(ri, ci),
                    table.cell(ri, ci).and_then(tabular::Value::as_number),
                    "numeric grid mismatch at ({ri}, {ci})"
                );
            }
        }
    }
}
