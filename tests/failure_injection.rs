//! Failure-injection and adversarial-input tests: degenerate tables, hostile
//! strings, and out-of-contract inputs must produce errors or empty results
//! — never panics or corrupt state.

// Integration-test helpers run outside #[cfg(test)], so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used)]

use tabular::{Table, Value};
use uctr::{Sample, TableWithContext, UctrConfig, UctrPipeline, Verdict};

fn empty_table() -> Table {
    Table::from_strings("empty", &[vec![]]).unwrap()
}

fn header_only() -> Table {
    Table::from_strings("h", &[vec!["a", "b"]]).unwrap()
}

#[test]
fn executors_survive_empty_tables() {
    let empty = empty_table();
    let header = header_only();
    // SQL on zero-column table: unknown column error, not a panic.
    assert!(sqlexec::run_sql("select [a] from w", &empty).is_err());
    // SQL on header-only table: executes to an empty result.
    let r = sqlexec::run_sql("select [a] from w", &header).unwrap();
    assert!(r.is_empty());
    // count(*) over nothing is 0.
    let r = sqlexec::run_sql("select count(*) from w", &header).unwrap();
    assert_eq!(r.answer_text(), "0");
    // Logic aggregates over nothing: Empty error.
    let e = logicforms::parse("eq { max { all_rows ; a } ; 1 }").unwrap();
    assert!(logicforms::evaluate_truth(&e, &header).is_err());
    // count over nothing is fine.
    let e = logicforms::parse("eq { count { all_rows } ; 0 }").unwrap();
    assert!(logicforms::evaluate_truth(&e, &header).unwrap());
    // Arithmetic: unknown row.
    assert!(arithexpr::run_arith("add( the a of x , 1 )", &header).is_err());
}

#[test]
fn pipeline_skips_degenerate_inputs() {
    let inputs = vec![
        TableWithContext::bare(empty_table()),
        TableWithContext::bare(header_only()),
        TableWithContext {
            table: header_only().into(),
            paragraph: Some(String::new()),
            topic: String::new(),
        },
    ];
    for cfg in [UctrConfig::qa(), UctrConfig::verification()] {
        let samples = UctrPipeline::new(cfg).generate(&inputs);
        assert!(samples.is_empty(), "degenerate inputs produced {} samples", samples.len());
    }
}

#[test]
fn degenerate_inputs_are_visible_in_the_report() {
    let inputs = vec![
        TableWithContext::bare(empty_table()),
        TableWithContext::bare(header_only()),
        TableWithContext::bare(empty_table()),
    ];
    for cfg in [UctrConfig::qa(), UctrConfig::verification()] {
        let (samples, report) = UctrPipeline::new(cfg).generate_with_report(&inputs);
        assert!(samples.is_empty());
        // The telemetry must show the inputs were seen and skipped, not
        // silently lost.
        assert_eq!(report.inputs_total, 3);
        assert_eq!(report.inputs_degenerate, 3);
        assert_eq!(report.accepted(), 0);
        assert_eq!(report.attempted(), 0, "degenerate inputs must not reach the sources");
    }
}

#[test]
fn unsuitable_tables_surface_as_discards_in_the_report() {
    // An all-text table: numeric SQL/arith templates bind nothing, so the
    // funnel must record the failed attempts — as schema-prefilter skips
    // (templates whose requirement the table provably cannot meet) or as
    // runtime discards — rather than quietly shrinking.
    let text_table =
        Table::from_strings("t", &[vec!["a", "b"], vec!["x", "y"], vec!["z", "w"], vec!["q", "r"]])
            .unwrap();
    let (samples, report) = UctrPipeline::new(UctrConfig::qa())
        .generate_with_report(&[TableWithContext::bare(text_table)]);
    let total_discards: u64 = report.discards_by_reason().values().sum();
    assert!(
        report.prefiltered() + total_discards > 0,
        "an all-text table under a numeric-heavy config must skip attempts: {}",
        report.summary()
    );
    // The statically infeasible pairs (every arith template needs numeric
    // cells) are caught by the prefilter, before the instantiation sampler.
    let arith = report.kinds.iter().find(|k| k.kind == "arith").unwrap();
    assert_eq!(arith.prefiltered, arith.attempted, "{}", report.summary());
    // Whatever was accepted is still exactly what the report claims.
    assert_eq!(report.accepted(), samples.len() as u64);
}

#[test]
fn templates_refuse_unsuitable_tables() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // All-text table: numeric templates must decline.
    let text_only =
        Table::from_strings("t", &[vec!["a", "b"], vec!["x", "y"], vec!["z", "w"]]).unwrap();
    let sql = sqlexec::SqlTemplate::parse("select sum ( c1_number ) from w").unwrap();
    assert!(sql.instantiate(&text_only, &mut rng).is_none());
    let lf = logicforms::LfTemplate::parse("round_eq { avg { all_rows ; c1 } ; val1 }").unwrap();
    assert!(lf.instantiate(&text_only, &mut rng, true).is_none());
    let ae = arithexpr::AeTemplate::parse("add( val1 , val2 )").unwrap();
    assert!(ae.instantiate(&text_only, &mut rng).is_none());
}

#[test]
fn hostile_strings_do_not_break_parsers() {
    let nasty = [
        "",
        ";;;",
        "select",
        "select select select",
        "eq { ",
        "} } {",
        "add(((((",
        "select c1 from w where",
        "\u{0000}\u{FFFF}",
        "🦀🦀🦀",
        "select [ from w",
        "eq { count { all_rows } ; }",
        "divide( , )",
    ];
    for s in nasty {
        // All three parsers must return Err, never panic.
        let _ = sqlexec::parse(s);
        let _ = logicforms::parse(s);
        let _ = arithexpr::parse(s);
    }
}

#[test]
fn hostile_cell_values_survive_feature_extraction() {
    // Cells containing regex-ish / substring-ish traps, huge numbers, and
    // unicode must not break the models' feature extraction.
    let t = Table::from_strings(
        "trap",
        &[
            vec!["name", "v"],
            vec!["a.b*c", "999999999999999"],
            vec!["((x))", "-0.0000001"],
            vec!["ünïcödé", "1e3"],
            vec!["", "42"],
        ],
    )
    .unwrap();
    let claim = Sample::verification(
        t.clone(),
        "((x)) has the highest v and a.b*c is listed once. ünïcödé too.",
        Verdict::Refuted,
    );
    let fv = models::verifier_features(&claim);
    assert!(!fv.is_empty());
    let qa = Sample::qa(t, "What is the v of ünïcödé?", "1000");
    let cands = models::generate_candidates(&qa);
    assert!(!cands.is_empty());
}

#[test]
fn csv_parser_rejects_malformed_but_accepts_weird() {
    // Ragged rows: structural error.
    assert!(tabular::table_from_csv("t", "a,b\n1\n").is_err());
    // A lone quote: unterminated.
    assert!(tabular::table_from_csv("t", "a\n\"x\n").is_err());
    // Unicode, long fields, embedded quotes: fine.
    let long = "x".repeat(10_000);
    let csv = format!("h\n\"{long}\"\n\"ü,ö\"\n");
    let t = tabular::table_from_csv("t", &csv).unwrap();
    assert_eq!(t.n_rows(), 2);
}

#[test]
fn text_to_table_ignores_garbage_paragraphs() {
    let t = header_only();
    for p in [
        "",
        "....",
        "has has has of of of",
        "a b of c and d of e has f of g.",
        &"word ".repeat(5000),
    ] {
        // Must not panic; may legitimately return None.
        let _ = textops::text_to_table(&t, p);
    }
}

#[test]
fn single_row_and_single_column_tables() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let one_row = Table::from_strings("t", &[vec!["a", "b"], vec!["x", "5"]]).unwrap();
    let one_col = Table::from_strings("t", &[vec!["a"], vec!["1"], vec!["2"], vec!["3"]]).unwrap();
    // Splitting a 1-row table must refuse (no table evidence would remain).
    assert!(textops::table_to_text(&one_row, 0, &mut rng).is_none());
    // A one-column table still supports programs on that column.
    let r = sqlexec::run_sql("select sum([a]) from w", &one_col).unwrap();
    assert_eq!(r.answer_text(), "6");
    // Superlative claim instantiation on one row: argmax of 1 row is row 0.
    let e = logicforms::parse("eq { hop { argmax { all_rows ; b } ; a } ; x }").unwrap();
    assert!(logicforms::evaluate_truth(&e, &one_row).unwrap());
}

#[test]
fn values_with_null_and_nan_poison() {
    // NaN/inf can never enter a table; nulls propagate safely.
    assert!(Value::number(f64::NAN).is_null());
    let t = Table::from_strings("t", &[vec!["a", "b"], vec!["x", ""], vec!["y", "3"]]).unwrap();
    // Aggregates skip the null.
    let r = sqlexec::run_sql("select avg([b]) from w", &t).unwrap();
    assert_eq!(r.answer_text(), "3");
    // Comparisons against null never match.
    let r = sqlexec::run_sql("select [a] from w where [b] > 0", &t).unwrap();
    assert_eq!(r.answer_text(), "y");
    // argmax skips nulls.
    assert_eq!(t.argmax(1), Some(1));
}

#[test]
fn model_predictions_on_foreign_samples_do_not_panic() {
    // Predicting with a model trained on one domain against wildly
    // different evidence must be safe.
    let b = corpora::semtab_like(corpora::CorpusConfig::tiny());
    let model = models::VerifierModel::train(
        &b.gold.train,
        models::VerdictSpace::ThreeWay,
        models::EvidenceView::Full,
    );
    let weird = Sample::verification(empty_table(), "", Verdict::Unknown);
    let _ = model.predict(&weird);
    let qa_model = models::QaModel::untrained();
    let weird_q = Sample::qa(empty_table(), "", "");
    // A zero-column table still yields the row-count candidate ("0"); the
    // point is prediction never panics and returns a candidate.
    let pred = qa_model.predict(&weird_q);
    assert!(pred == "0" || pred.is_empty(), "unexpected prediction {pred:?}");
}
