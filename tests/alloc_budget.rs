//! Allocation-budget regression test for the generation hot path.
//!
//! A counting global allocator measures how many heap allocations one
//! sequential pipeline run performs per generated sample, plus the peak
//! live-heap growth over the counted window. The count budget below is a
//! ratchet: it was recorded at ~10% above the measured cost of the
//! scratch-buffer hot path, so a change that re-introduces per-sample
//! clones (e.g. rebuilding candidate vectors or `ExecContext` caches
//! inside the attempt loop) fails here before it shows up as a bench
//! regression. Peak bytes are reported alongside the count in the failure
//! message (and under `ALLOC_BUDGET_PRINT=1 ... -- --nocapture`) but are
//! not gated: peak live heap scales with the retained sample vector, so an
//! absolute byte ratchet would fire on workload-size tweaks rather than
//! hot-path regressions. If you *lowered* the allocation cost, re-record
//! the budget by running this test with `ALLOC_BUDGET_PRINT=1` and pinning
//! ~10% above the printed figure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

use nlgen::NoiseConfig;
use tabular::Table;
use uctr::{TableWithContext, UctrConfig, UctrPipeline};

/// Maximum allocations per generated sample (see module docs to re-record).
const MAX_ALLOCS_PER_SAMPLE: u64 = 48; // measured 44/sample, +10%

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Live-heap delta since counting started. Signed: frees of memory that
/// predates the counted window legitimately drive it negative.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`LIVE_BYTES`] over the counted window.
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

fn track_alloc(bytes: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    track_grow(bytes as i64);
}

fn track_grow(delta: i64) {
    let live = LIVE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            track_alloc(layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if COUNTING.load(Ordering::Relaxed) {
            LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            track_grow(new_size as i64 - layout.size() as i64);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            track_alloc(layout.size());
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn inputs() -> Vec<TableWithContext> {
    let teams = Table::from_strings(
        "Teams",
        &[
            vec!["team", "city", "points", "wins"],
            vec!["Reds", "Oslo", "77", "21"],
            vec!["Blues", "Lima", "64", "18"],
            vec!["Greens", "Kyiv", "81", "24"],
            vec!["Golds", "Quito", "59", "15"],
        ],
    )
    .unwrap_or_else(|e| panic!("test table: {e}"));
    let budgets = Table::from_strings(
        "Budgets",
        &[
            vec!["department", "2019", "2018"],
            vec!["Revenue", "8800", "8000"],
            vec!["Costs", "6100", "5900"],
            vec!["Equity", "3200", "4000"],
        ],
    )
    .unwrap_or_else(|e| panic!("test table: {e}"));
    vec![
        TableWithContext {
            table: teams.into(),
            paragraph: Some(
                "The league expanded recently. Silvers has a city of Rome, a points of 70 \
                 and a wins of 19. Attendance rose."
                    .to_string(),
            ),
            topic: "sports".into(),
        },
        TableWithContext {
            table: budgets.into(),
            paragraph: Some("Margins has a 2019 of 2700 and a 2018 of 2100.".to_string()),
            topic: "finance".into(),
        },
    ]
}

#[test]
fn allocations_per_sample_stay_within_budget() {
    let cfg = UctrConfig { noise: NoiseConfig::off(), ..UctrConfig::qa() };
    let pipeline = UctrPipeline::new(cfg);
    let data = inputs();

    // Warm-up run outside the counted window: template banks, lazily built
    // vocabularies, and other one-time setup must not bill the hot path.
    let warm = pipeline.generate(&data);
    assert!(!warm.is_empty(), "warm-up produced no samples");

    ALLOCS.store(0, Ordering::SeqCst);
    LIVE_BYTES.store(0, Ordering::SeqCst);
    PEAK_BYTES.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let samples = pipeline.generate(&data);
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    let peak = PEAK_BYTES.load(Ordering::SeqCst).max(0) as u64;

    let n = samples.len() as u64;
    assert!(n > 0, "counted run produced no samples");
    let per_sample = allocs.div_ceil(n);
    let peak_per_sample = peak.div_ceil(n);
    if std::env::var_os("ALLOC_BUDGET_PRINT").is_some() {
        eprintln!(
            "alloc budget: {allocs} allocations / {n} samples = {per_sample} per sample, \
             peak live heap {peak} bytes ({peak_per_sample} bytes/sample)"
        );
    }
    assert!(
        per_sample <= MAX_ALLOCS_PER_SAMPLE,
        "allocation budget exceeded: {per_sample} allocations per sample \
         (budget {MAX_ALLOCS_PER_SAMPLE}), peak live heap {peak} bytes \
         ({peak_per_sample} bytes/sample); see module docs for how to re-record"
    );
}
