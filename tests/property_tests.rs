//! Property-style tests on the core data structures and invariants: parser
//! round-trips for all three program DSLs, executor algebra, sampling
//! type-discipline, and label faithfulness of generated claims.
//!
//! Formerly written with `proptest`; the build environment has no crates.io
//! access, so the same invariants now run over deterministic seeded case
//! sweeps (see `vendor/README.md`).

// Integration-test helpers run outside #[cfg(test)], so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabular::{Table, Value};

/// Number of random cases per property.
const CASES: u64 = 64;

/// A random table: 3..=8 rows, schema [name text, alpha number, beta number].
fn random_table(seed: u64) -> Table {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rows = 3 + (next() % 6) as usize;
    let mut grid: Vec<Vec<String>> = vec![vec!["name".into(), "alpha".into(), "beta".into()]];
    for i in 0..rows {
        grid.push(vec![
            format!("row{i}"),
            format!("{}", next() % 1000),
            format!("{}", next() % 500),
        ]);
    }
    let borrowed: Vec<Vec<&str>> =
        grid.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
    Table::from_strings("prop", &borrowed).unwrap()
}

// ---------------------------------------------------------------------------
// Parser round-trips.
// ---------------------------------------------------------------------------

#[test]
fn sql_render_parse_roundtrip() {
    let mut queries: Vec<String> = vec![
        "select c1 from w order by c2_number desc limit 1".into(),
        "select count ( * ) from w where c1 = val1".into(),
        "select sum ( c1_number ) from w where c2 = val1 and c3_number > val2".into(),
        "select [a b] from w where [c d] = 'v' order by [e f] asc".into(),
        "select distinct c1 from w group by c1".into(),
        "select c1_number - c2_number from w where c3 = val1".into(),
    ];
    for a in 1usize..5 {
        for b in 1usize..5 {
            queries.push(format!("select c{a} from w where c{b}_number > val1 limit {}", a + b));
        }
    }
    for q in &queries {
        let stmt = sqlexec::parse(q).unwrap();
        let rendered = stmt.to_string();
        let reparsed = sqlexec::parse(&rendered).unwrap();
        assert_eq!(stmt, reparsed, "round-trip failed for {q}");
    }
}

#[test]
fn logic_render_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..CASES {
        let col =
            *rand::seq::SliceRandom::choose(&["alpha", "beta", "name"][..], &mut rng).unwrap();
        let val: i64 = rng.gen_range(0..1000);
        let n: usize = rng.gen_range(1..4);
        let forms = [
            format!("eq {{ count {{ filter_eq {{ all_rows ; {col} ; {val} }} }} ; {n} }}"),
            format!("most_greater {{ all_rows ; {col} ; {val} }}"),
            format!("eq {{ nth_max {{ all_rows ; {col} ; {n} }} ; {val} }}"),
            format!("only {{ filter_less {{ all_rows ; {col} ; {val} }} }}"),
        ];
        for f in &forms {
            let e = logicforms::parse(f).unwrap();
            let reparsed = logicforms::parse(&e.to_string()).unwrap();
            assert_eq!(e, reparsed, "round-trip failed for {f}");
        }
    }
}

#[test]
fn arith_render_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..CASES {
        let a: i64 = rng.gen_range(1..5000);
        let b: i64 = rng.gen_range(1..5000);
        let programs = [
            format!("subtract( {a} , {b} ) , divide( #0 , {b} )"),
            format!("greater( {a} , {b} )"),
            "table_sum( c1 ) , divide( val1 , #0 )".to_string(),
        ];
        for p in &programs {
            let prog = arithexpr::parse(p).unwrap();
            let reparsed = arithexpr::parse(&prog.to_string()).unwrap();
            assert_eq!(prog, reparsed, "round-trip failed for {p}");
        }
    }
}

// ---------------------------------------------------------------------------
// Executor algebra.
// ---------------------------------------------------------------------------

#[test]
fn count_filter_at_most_rows() {
    let mut rng = StdRng::seed_from_u64(3);
    for case in 0..CASES {
        let table = random_table(case + 1);
        let threshold: i64 = rng.gen_range(0..1000);
        let q = format!("select count(*) from w where [alpha] > {threshold}");
        let r = sqlexec::run_sql(&q, &table).unwrap();
        let count = r.denotation()[0].as_number().unwrap() as usize;
        assert!(count <= table.n_rows());
    }
}

#[test]
fn argmax_row_achieves_max() {
    for case in 0..CASES {
        let table = random_table(case + 1);
        let max_e = logicforms::parse("max { all_rows ; alpha }").unwrap();
        let max_v = logicforms::evaluate(&max_e, &table).unwrap();
        let hop_e = logicforms::parse("hop { argmax { all_rows ; alpha } ; alpha }").unwrap();
        let hop_v = logicforms::evaluate(&hop_e, &table).unwrap();
        let a = max_v.value.as_scalar().and_then(Value::as_number).expect("non-numeric max");
        let b = hop_v.value.as_scalar().and_then(Value::as_number).expect("non-numeric hop");
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn sum_equals_avg_times_count() {
    for case in 0..CASES {
        let table = random_table(case + 1);
        let sum =
            logicforms::evaluate(&logicforms::parse("sum { all_rows ; beta }").unwrap(), &table)
                .unwrap();
        let avg =
            logicforms::evaluate(&logicforms::parse("avg { all_rows ; beta }").unwrap(), &table)
                .unwrap();
        let s = sum.value.as_scalar().and_then(Value::as_number).unwrap();
        let a = avg.value.as_scalar().and_then(Value::as_number).unwrap();
        assert!((s - a * table.n_rows() as f64).abs() < 1e-6 * s.abs().max(1.0));
    }
}

#[test]
fn comparator_duality() {
    // filter_greater + filter_less_eq partition the rows.
    let mut rng = StdRng::seed_from_u64(4);
    for case in 0..CASES {
        let table = random_table(case + 1);
        let threshold: i64 = rng.gen_range(0..1000);
        let gt = logicforms::evaluate(
            &logicforms::parse(&format!(
                "count {{ filter_greater {{ all_rows ; alpha ; {threshold} }} }}"
            ))
            .unwrap(),
            &table,
        )
        .unwrap();
        let le = logicforms::evaluate(
            &logicforms::parse(&format!(
                "count {{ filter_less_eq {{ all_rows ; alpha ; {threshold} }} }}"
            ))
            .unwrap(),
            &table,
        )
        .unwrap();
        let g = gt.value.as_scalar().and_then(Value::as_number).unwrap() as usize;
        let l = le.value.as_scalar().and_then(Value::as_number).unwrap() as usize;
        assert_eq!(g + l, table.n_rows());
    }
}

#[test]
fn sql_order_limit_prefix() {
    let mut rng = StdRng::seed_from_u64(5);
    for case in 0..CASES {
        let table = random_table(case + 1);
        let k: usize = rng.gen_range(1..6);
        let all = sqlexec::run_sql("select [name] from w order by [alpha] desc", &table).unwrap();
        let topk = sqlexec::run_sql(
            &format!("select [name] from w order by [alpha] desc limit {k}"),
            &table,
        )
        .unwrap();
        assert_eq!(topk.rows.len(), k.min(table.n_rows()));
        for (a, b) in topk.rows.iter().zip(all.rows.iter()) {
            assert_eq!(a, b);
        }
    }
}

// ---------------------------------------------------------------------------
// Sampling discipline.
// ---------------------------------------------------------------------------

#[test]
fn sql_sampling_respects_types() {
    let tpl = sqlexec::SqlTemplate::parse("select c1 from w where c2_number > val1").unwrap();
    for case in 0..CASES {
        let table = random_table(case + 1);
        let mut rng = StdRng::seed_from_u64(case * 7 + 1);
        if let Some(stmt) = tpl.instantiate(&table, &mut rng) {
            // The compared column must be numeric (alpha or beta).
            let rendered = stmt.to_string();
            assert!(
                rendered.contains("alpha >") || rendered.contains("beta >"),
                "non-numeric column bound to c2_number: {rendered}"
            );
            // And it must execute.
            assert!(sqlexec::execute(&stmt, &table).is_ok());
        }
    }
}

#[test]
fn generated_claims_match_their_labels() {
    let tpl = logicforms::LfTemplate::parse(
        "eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }",
    )
    .unwrap();
    for case in 0..CASES {
        let table = random_table(case + 1);
        for desired in [false, true] {
            let mut rng = StdRng::seed_from_u64(case * 11 + 3);
            if let Some(claim) = tpl.instantiate(&table, &mut rng, desired) {
                assert_eq!(claim.truth, desired);
                let truth = logicforms::evaluate_truth(&claim.expr, &table).unwrap();
                assert_eq!(truth, desired);
            }
        }
    }
}

#[test]
fn arith_instantiation_executes() {
    let tpl =
        arithexpr::AeTemplate::parse("subtract( val1 , val2 ) , divide( #0 , val2 )").unwrap();
    for case in 0..CASES {
        let table = random_table(case + 1);
        let mut rng = StdRng::seed_from_u64(case * 13 + 5);
        if let Some(inst) = tpl.instantiate(&table, &mut rng) {
            assert!(!inst.program.has_holes());
            // Re-execution is deterministic.
            let again = arithexpr::execute(&inst.program, &table).unwrap();
            assert_eq!(again.answer, inst.outcome.answer);
        }
    }
}

// ---------------------------------------------------------------------------
// Text utilities.
// ---------------------------------------------------------------------------

#[test]
fn token_f1_symmetric_and_bounded() {
    use tabular::text::{token_f1, tokenize};
    let mut rng = StdRng::seed_from_u64(6);
    let random_phrase = |rng: &mut StdRng| {
        let words: usize = rng.gen_range(1..=7);
        (0..words)
            .map(|_| {
                let len: usize = rng.gen_range(1..=8);
                (0..len).map(|_| (b'a' + rng.gen_range(0..26u8)) as char).collect::<String>()
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    for _ in 0..CASES {
        let a = random_phrase(&mut rng);
        let b = random_phrase(&mut rng);
        let ta = tokenize(&a);
        let tb = tokenize(&b);
        let f_ab = token_f1(&ta, &tb);
        let f_ba = token_f1(&tb, &ta);
        assert!((f_ab - f_ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&f_ab));
        assert!((token_f1(&ta, &ta) - 1.0).abs() < 1e-12);
    }
}

#[test]
fn csv_roundtrip() {
    for case in 0..CASES {
        let table = random_table(case + 1);
        let csv = tabular::table_to_csv(&table);
        let back = tabular::table_from_csv("prop", &csv).unwrap();
        assert_eq!(table.rows(), back.rows());
    }
}

#[test]
fn value_parse_display_stable() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..1000 {
        let n: f64 = rng.gen_range(-1e9..1e9);
        let v = Value::number((n * 100.0).round() / 100.0);
        let reparsed = Value::parse(&v.to_string());
        assert!(v.loosely_equals(&reparsed), "{v:?} vs {reparsed:?}");
    }
}

// ---------------------------------------------------------------------------
// Schema-prefilter soundness.
// ---------------------------------------------------------------------------

/// The pipeline's schema prefilter may skip a `(template, table)` pair only
/// when `try_instantiate` would fail for EVERY rng stream (DESIGN.md §7's
/// soundness contract). Pin it: for each builtin template whose
/// [`uctr::SchemaRequirement`] a table provably fails, instantiation must
/// fail under 32 distinct seeds.
#[test]
fn schema_prefilter_skips_only_deterministic_failures() {
    use tabular::ExecContext;
    use uctr::TemplateBank;

    // A zoo stressing every axis of the requirement lattice: no data rows,
    // no numeric columns, too few columns, dates only, and a single row.
    let mut tables: Vec<Table> = [
        vec![vec!["a", "b"]],
        vec![vec!["a", "b"], vec!["x", "y"], vec!["z", "w"], vec!["q", "r"]],
        vec![vec!["v"], vec!["1"], vec!["2"], vec!["3"]],
        vec![vec!["n"], vec!["x"], vec!["y"]],
        vec![vec!["d"], vec!["2001-01-01"], vec!["2002-02-02"]],
        vec![vec!["a", "b"], vec!["x", "3"]],
    ]
    .into_iter()
    .map(|grid| Table::from_strings("zoo", &grid).unwrap())
    .collect();
    // Randomized numeric tables exercise the satisfied (pass-through) side.
    for case in 0..16 {
        tables.push(random_table(case + 1));
    }

    let bank = TemplateBank::builtin();
    let mut skipped_pairs = 0usize;
    let mut passed_pairs = 0usize;
    for table in &tables {
        let ctx = ExecContext::new(table);
        for (any, req) in bank.templates().iter().zip(bank.requirements()) {
            let tpl = any.as_program();
            // The stored requirement is exactly what the analyzer computes.
            assert_eq!(*req, tpl.analyze().requirement, "stale bank requirement");
            if req.satisfied_by(&ctx) {
                passed_pairs += 1;
                continue; // the prefilter would let this pair through
            }
            skipped_pairs += 1;
            for seed in 0..32u64 {
                let mut rng = StdRng::seed_from_u64(seed * 9973 + 17);
                assert!(
                    tpl.try_instantiate(table, &ctx, &mut rng, &mut uctr::GenScratch::default())
                        .is_err(),
                    "prefilter would skip `{}` on a {}x{} table, but seed {seed} instantiated it",
                    tpl.signature(),
                    table.n_rows(),
                    table.n_cols(),
                );
            }
        }
    }
    assert!(skipped_pairs > 0, "the table zoo never triggered the prefilter");
    assert!(passed_pairs > 0, "every pair was prefiltered; the pass-through side is untested");
}

#[test]
fn feasible_set_matches_brute_force_requirement_scan() {
    use tabular::ExecContext;
    use uctr::telemetry::KindSlot;
    use uctr::TemplateBank;

    // The same lattice-stressing zoo as the prefilter property above.
    let mut tables: Vec<Table> = [
        vec![vec!["a", "b"]],
        vec![vec!["a", "b"], vec!["x", "y"], vec!["z", "w"], vec!["q", "r"]],
        vec![vec!["v"], vec!["1"], vec!["2"], vec!["3"]],
        vec![vec!["n"], vec!["x"], vec!["y"]],
        vec![vec!["d"], vec!["2001-01-01"], vec!["2002-02-02"]],
        vec![vec!["a", "b"], vec!["x", "3"]],
    ]
    .into_iter()
    .map(|grid| Table::from_strings("zoo", &grid).unwrap())
    .collect();
    for case in 0..16 {
        tables.push(random_table(case + 1));
    }

    let banks = [
        ("builtin", TemplateBank::builtin()),
        ("mined", uctr::mined_bank(uctr::mining::SYNTHETIC_SEED)),
    ];
    let kinds = [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith];
    for (name, bank) in &banks {
        for table in &tables {
            let ctx = ExecContext::new(table);
            let feasible = bank.feasible_set(&ctx);
            for kind in kinds {
                // Ground truth: check every sampling slot's requirement
                // directly — the O(slots) path the inverted index replaces.
                // The mined bank's strata carry equivalence-weight slots
                // (a representative repeats once per canonically merged
                // equivalent), so the slot list, not the deduplicated
                // template list, is the unit of sampling.
                let brute: Vec<usize> = bank
                    .stratum(kind)
                    .iter()
                    .copied()
                    .filter(|&i| bank.requirements()[i].satisfied_by(&ctx))
                    .collect();
                // Non-circularity: the slots cover exactly the distinct
                // feasible templates of the kind found by a full scan of
                // the deduplicated store.
                let distinct: std::collections::BTreeSet<usize> = bank
                    .templates()
                    .iter()
                    .enumerate()
                    .filter(|(i, t)| {
                        t.as_program().kind() == kind && bank.requirements()[*i].satisfied_by(&ctx)
                    })
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(
                    brute.iter().copied().collect::<std::collections::BTreeSet<usize>>(),
                    distinct,
                    "feasible slots of `{name}` cover a different template set than the \
                     full-store scan (kind {kind:?})"
                );
                assert_eq!(
                    feasible.indices(kind),
                    &brute[..],
                    "feasible set of `{name}` diverges from the brute-force scan \
                     (kind {kind:?}, {}x{} table)",
                    table.n_rows(),
                    table.n_cols(),
                );
                // When everything is feasible the set must borrow the whole
                // stratum, and sampling from it must be stream-identical to
                // the bank's own draw (the golden digests rely on this).
                if brute.len() == bank.stratum_len(kind) {
                    assert!(feasible.is_full_stratum(kind), "full stratum not borrowed");
                    for seed in 0..8u64 {
                        let mut a = StdRng::seed_from_u64(seed * 31 + 7);
                        let mut b = StdRng::seed_from_u64(seed * 31 + 7);
                        let via_set = feasible.choose(kind, &mut a).map(|t| t.signature());
                        let via_bank = bank.choose(kind, &mut b).map(|t| t.signature());
                        assert_eq!(via_set, via_bank, "draw stream diverged on `{name}`");
                    }
                } else {
                    // A strict subset: every draw must come from it.
                    for seed in 0..8u64 {
                        let mut rng = StdRng::seed_from_u64(seed * 31 + 7);
                        if let Some(t) = feasible.choose(kind, &mut rng) {
                            let sig = t.signature();
                            assert!(
                                brute
                                    .iter()
                                    .any(|&i| bank.templates()[i].as_program().signature() == sig),
                                "chose an infeasible template on `{name}`"
                            );
                        } else {
                            assert!(brute.is_empty(), "empty draw from a non-empty feasible set");
                        }
                    }
                }
            }
        }
    }
}
