//! Property-based tests (proptest) on the core data structures and
//! invariants: parser round-trips for all three program DSLs, executor
//! algebra, sampling type-discipline, and label faithfulness of generated
//! claims.

use proptest::prelude::*;
use tabular::{Table, Value};

// ---------------------------------------------------------------------------
// Random-table strategy.
// ---------------------------------------------------------------------------

fn arb_table() -> impl Strategy<Value = Table> {
    // 3..=8 rows, schema [name text, a number, b number]
    (3usize..=8, any::<u64>()).prop_map(|(rows, seed)| {
        let mut grid: Vec<Vec<String>> = vec![vec!["name".into(), "alpha".into(), "beta".into()]];
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..rows {
            grid.push(vec![
                format!("row{i}"),
                format!("{}", next() % 1000),
                format!("{}", next() % 500),
            ]);
        }
        let borrowed: Vec<Vec<&str>> =
            grid.iter().map(|r| r.iter().map(String::as_str).collect()).collect();
        Table::from_strings("prop", &borrowed).unwrap()
    })
}

// ---------------------------------------------------------------------------
// Parser round-trips.
// ---------------------------------------------------------------------------

fn arb_sql() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("select c1 from w order by c2_number desc limit 1".to_string()),
        Just("select count ( * ) from w where c1 = val1".to_string()),
        Just("select sum ( c1_number ) from w where c2 = val1 and c3_number > val2".to_string()),
        Just("select [a b] from w where [c d] = 'v' order by [e f] asc".to_string()),
        Just("select distinct c1 from w group by c1".to_string()),
        Just("select c1_number - c2_number from w where c3 = val1".to_string()),
        (1usize..5, 1usize..5).prop_map(|(a, b)| format!(
            "select c{a} from w where c{b}_number > val1 limit {}",
            a + b
        )),
    ]
}

proptest! {
    #[test]
    fn sql_render_parse_roundtrip(q in arb_sql()) {
        let stmt = sqlexec::parse(&q).unwrap();
        let rendered = stmt.to_string();
        let reparsed = sqlexec::parse(&rendered).unwrap();
        prop_assert_eq!(stmt, reparsed);
    }

    #[test]
    fn logic_render_parse_roundtrip(
        col in prop_oneof![Just("alpha"), Just("beta"), Just("name")],
        val in 0i64..1000,
        n in 1usize..4,
    ) {
        let forms = [
            format!("eq {{ count {{ filter_eq {{ all_rows ; {col} ; {val} }} }} ; {n} }}"),
            format!("most_greater {{ all_rows ; {col} ; {val} }}"),
            format!("eq {{ nth_max {{ all_rows ; {col} ; {n} }} ; {val} }}"),
            format!("only {{ filter_less {{ all_rows ; {col} ; {val} }} }}"),
        ];
        for f in &forms {
            let e = logicforms::parse(f).unwrap();
            let reparsed = logicforms::parse(&e.to_string()).unwrap();
            prop_assert_eq!(e, reparsed);
        }
    }

    #[test]
    fn arith_render_parse_roundtrip(a in 1i64..5000, b in 1i64..5000) {
        let programs = [
            format!("subtract( {a} , {b} ) , divide( #0 , {b} )"),
            format!("greater( {a} , {b} )"),
            "table_sum( c1 ) , divide( val1 , #0 )".to_string(),
        ];
        for p in &programs {
            let prog = arithexpr::parse(p).unwrap();
            let reparsed = arithexpr::parse(&prog.to_string()).unwrap();
            prop_assert_eq!(prog, reparsed);
        }
    }

    // -----------------------------------------------------------------------
    // Executor algebra.
    // -----------------------------------------------------------------------

    #[test]
    fn count_filter_at_most_rows(table in arb_table(), threshold in 0i64..1000) {
        let q = format!("select count(*) from w where [alpha] > {threshold}");
        let r = sqlexec::run_sql(&q, &table).unwrap();
        let count = r.denotation()[0].as_number().unwrap() as usize;
        prop_assert!(count <= table.n_rows());
    }

    #[test]
    fn argmax_row_achieves_max(table in arb_table()) {
        let e = logicforms::parse("eq { hop { argmax { all_rows ; alpha } ; alpha } ; 0 }").unwrap();
        // Evaluate the inner hop via the outcome of max: argmax value == max value.
        let max_e = logicforms::parse("max { all_rows ; alpha }").unwrap();
        let max_v = logicforms::evaluate(&max_e, &table).unwrap();
        let hop_e = logicforms::parse("hop { argmax { all_rows ; alpha } ; alpha }").unwrap();
        let hop_v = logicforms::evaluate(&hop_e, &table).unwrap();
        let (Some(a), Some(b)) = (
            max_v.value.as_scalar().and_then(Value::as_number),
            hop_v.value.as_scalar().and_then(Value::as_number),
        ) else {
            return Err(TestCaseError::fail("non-numeric"));
        };
        prop_assert!((a - b).abs() < 1e-9);
        let _ = e;
    }

    #[test]
    fn sum_equals_avg_times_count(table in arb_table()) {
        let sum = logicforms::evaluate(&logicforms::parse("sum { all_rows ; beta }").unwrap(), &table).unwrap();
        let avg = logicforms::evaluate(&logicforms::parse("avg { all_rows ; beta }").unwrap(), &table).unwrap();
        let s = sum.value.as_scalar().and_then(Value::as_number).unwrap();
        let a = avg.value.as_scalar().and_then(Value::as_number).unwrap();
        prop_assert!((s - a * table.n_rows() as f64).abs() < 1e-6 * s.abs().max(1.0));
    }

    #[test]
    fn comparator_duality(table in arb_table(), threshold in 0i64..1000) {
        // all_greater(v, t) implies !most_less_eq is not generally true, but
        // filter_greater + filter_less_eq partition the rows.
        let gt = logicforms::evaluate(
            &logicforms::parse(&format!("count {{ filter_greater {{ all_rows ; alpha ; {threshold} }} }}")).unwrap(),
            &table,
        ).unwrap();
        let le = logicforms::evaluate(
            &logicforms::parse(&format!("count {{ filter_less_eq {{ all_rows ; alpha ; {threshold} }} }}")).unwrap(),
            &table,
        ).unwrap();
        let g = gt.value.as_scalar().and_then(Value::as_number).unwrap() as usize;
        let l = le.value.as_scalar().and_then(Value::as_number).unwrap() as usize;
        prop_assert_eq!(g + l, table.n_rows());
    }

    #[test]
    fn sql_order_limit_prefix(table in arb_table(), k in 1usize..6) {
        let all = sqlexec::run_sql("select [name] from w order by [alpha] desc", &table).unwrap();
        let topk = sqlexec::run_sql(&format!("select [name] from w order by [alpha] desc limit {k}"), &table).unwrap();
        prop_assert_eq!(
            topk.rows.len(),
            k.min(table.n_rows())
        );
        for (a, b) in topk.rows.iter().zip(all.rows.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    // -----------------------------------------------------------------------
    // Sampling discipline.
    // -----------------------------------------------------------------------

    #[test]
    fn sql_sampling_respects_types(table in arb_table(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let tpl = sqlexec::SqlTemplate::parse("select c1 from w where c2_number > val1").unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(stmt) = tpl.instantiate(&table, &mut rng) {
            // The compared column must be numeric (alpha or beta).
            let rendered = stmt.to_string();
            prop_assert!(
                rendered.contains("alpha >") || rendered.contains("beta >"),
                "non-numeric column bound to c2_number: {}", rendered
            );
            // And it must execute.
            prop_assert!(sqlexec::execute(&stmt, &table).is_ok());
        }
    }

    #[test]
    fn generated_claims_match_their_labels(table in arb_table(), seed in any::<u64>(), desired in any::<bool>()) {
        use rand::SeedableRng;
        let tpl = logicforms::LfTemplate::parse(
            "eq { hop { filter_eq { all_rows ; c1 ; val1 } ; c2 } ; val2 }"
        ).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(claim) = tpl.instantiate(&table, &mut rng, desired) {
            prop_assert_eq!(claim.truth, desired);
            let truth = logicforms::evaluate_truth(&claim.expr, &table).unwrap();
            prop_assert_eq!(truth, desired);
        }
    }

    #[test]
    fn arith_instantiation_executes(table in arb_table(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let tpl = arithexpr::AeTemplate::parse("subtract( val1 , val2 ) , divide( #0 , val2 )").unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        if let Some(inst) = tpl.instantiate(&table, &mut rng) {
            prop_assert!(!inst.program.has_holes());
            // Re-execution is deterministic.
            let again = arithexpr::execute(&inst.program, &table).unwrap();
            prop_assert_eq!(again.answer, inst.outcome.answer);
        }
    }

    // -----------------------------------------------------------------------
    // Text utilities.
    // -----------------------------------------------------------------------

    #[test]
    fn token_f1_symmetric_and_bounded(a in "[a-z]{1,8}( [a-z]{1,8}){0,6}", b in "[a-z]{1,8}( [a-z]{1,8}){0,6}") {
        use tabular::text::{token_f1, tokenize};
        let ta = tokenize(&a);
        let tb = tokenize(&b);
        let f_ab = token_f1(&ta, &tb);
        let f_ba = token_f1(&tb, &ta);
        prop_assert!((f_ab - f_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&f_ab));
        prop_assert!((token_f1(&ta, &ta) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn csv_roundtrip(table in arb_table()) {
        let csv = tabular::table_to_csv(&table);
        let back = tabular::table_from_csv("prop", &csv).unwrap();
        prop_assert_eq!(table.rows(), back.rows());
    }

    #[test]
    fn value_parse_display_stable(n in -1e9f64..1e9f64) {
        let v = Value::number((n * 100.0).round() / 100.0);
        let reparsed = Value::parse(&v.to_string());
        prop_assert!(v.loosely_equals(&reparsed), "{:?} vs {:?}", v, reparsed);
    }
}
