//! Serving-layer determinism and backpressure, end to end and tokio-free.
//!
//! The daemon's core contract (DESIGN.md §11): a request's sample bytes
//! are a pure function of the request — the same request bytes yield
//! byte-identical samples at every worker count, under any interleaving
//! with co-running traffic, and whether the request was served from a
//! cold or a warm scratch pool. Backpressure is explicit: a full shard
//! rejects at admission with a retry hint and buffers nothing.

use std::sync::Arc;
use std::thread;
use uctr::serve::{Daemon, GenRequest, RequestSpec, ServeConfig, SubmitError, WireTable};
use uctr::Sample;

/// A small heterogeneous table set (hand-rolled rather than zoo-imported:
/// the test pins the daemon's behaviour, not the bench corpus).
fn tables() -> Vec<WireTable> {
    let grid = |title: &str, topic: &str, rows: &[&[&str]]| WireTable {
        title: title.into(),
        rows: rows.iter().map(|r| r.iter().map(|c| c.to_string()).collect()).collect(),
        paragraph: None,
        topic: topic.into(),
    };
    vec![
        grid(
            "Clubs",
            "sports",
            &[
                &["club", "city", "points", "wins"],
                &["Reds", "Oslo", "77", "21"],
                &["Blues", "Lima", "64", "18"],
                &["Greens", "Kyiv", "81", "24"],
                &["Golds", "Quito", "59", "15"],
                &["Silvers", "Perth", "70", "19"],
            ],
        ),
        grid(
            "Quarterly revenue",
            "finance",
            &[
                &["division", "q1", "q2", "growth"],
                &["Hardware", "120.5", "134.0", "11.2"],
                &["Software", "210.0", "255.5", "21.7"],
                &["Services", "98.0", "101.5", "3.6"],
            ],
        ),
    ]
}

/// The mixed workload: `IDENTICAL` clones of one QA request (ids differ,
/// bytes that matter do not) interleaved with distinct requests spanning
/// both tasks, several seeds, and different table subsets.
const IDENTICAL: usize = 4;

fn workload() -> Vec<GenRequest> {
    let tables = tables();
    let mut requests = Vec::new();
    for i in 0..IDENTICAL {
        requests.push(GenRequest::generate(i as u64, RequestSpec::qa(7), tables.clone()));
    }
    requests.push(GenRequest::generate(100, RequestSpec::qa(8), tables.clone()));
    requests.push(GenRequest::generate(101, RequestSpec::verification(7), tables.clone()));
    requests.push(GenRequest::generate(102, RequestSpec::verification(9), vec![tables[0].clone()]));
    let mut high = RequestSpec::qa(7);
    high.priority = 1;
    // Same bytes as the identical group except priority: priority is a
    // scheduling hint, outside the RNG namespace.
    requests.push(GenRequest::generate(103, high, tables.clone()));
    requests
}

/// Fires the whole workload concurrently (one client thread per request)
/// and returns each request's samples, in workload order.
fn serve_concurrently(daemon: &Daemon, requests: &[GenRequest]) -> Vec<Vec<Sample>> {
    thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| scope.spawn(move || daemon.dispatch(request.clone())))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let response = h.join().unwrap();
                assert_eq!(response.status, "ok", "{}", response.message);
                assert!(!response.samples.is_empty(), "every request must yield samples");
                response.samples
            })
            .collect()
    })
}

#[test]
fn samples_are_byte_identical_at_every_worker_count() {
    let requests = workload();
    // Reference run: a single-worker daemon serving the workload serially.
    let reference = {
        let daemon = Daemon::start(ServeConfig::with_shards(1)).unwrap();
        let out: Vec<Vec<Sample>> =
            requests.iter().map(|r| daemon.dispatch(r.clone()).samples).collect();
        daemon.shutdown();
        out
    };
    // The identical group (and its high-priority twin) collapse to one
    // byte stream; the distinct requests diverge from it and each other.
    for i in 1..IDENTICAL {
        assert_eq!(reference[0], reference[i], "identical requests must agree");
    }
    assert_eq!(reference[0], reference[IDENTICAL + 3], "priority is outside the RNG namespace");
    assert_ne!(reference[0], reference[IDENTICAL], "seed 7 vs 8 must diverge");
    assert_ne!(reference[IDENTICAL + 1], reference[IDENTICAL + 2], "distinct claims must diverge");

    for workers in 1..=8 {
        let daemon = Daemon::start(ServeConfig::with_shards(workers)).unwrap();
        // Twice per daemon: the first pass runs on cold pools, the second
        // on warm recycled scratch — bytes must not notice.
        for pass in 0..2 {
            let served = serve_concurrently(&daemon, &requests);
            for (i, (got, want)) in served.iter().zip(&reference).enumerate() {
                assert_eq!(got, want, "request {i} diverged with {workers} workers (pass {pass})");
            }
        }
        let stats = daemon.stats();
        assert_eq!(stats.requests_completed, 2 * requests.len() as u64);
        assert_eq!(stats.requests_failed, 0);
        daemon.shutdown();
    }
}

#[test]
fn tiny_queue_bound_rejects_exactly_the_overflow() {
    // One paused shard with room for two requests: of three-plus
    // concurrent submissions, exactly queue_bound are admitted and the
    // rest are rejected with the configured retry hint — deterministically,
    // because no worker is draining the queue underneath the submitters.
    let cfg = ServeConfig {
        shards: 1,
        queue_bound: 2,
        retry_after_ms: 3,
        paused: true,
        ..ServeConfig::default()
    };
    let daemon = Arc::new(Daemon::start(cfg).unwrap());
    let request = GenRequest::generate(0, RequestSpec::qa(5), tables());
    let submissions = 6usize;
    let outcomes: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..submissions)
            .map(|_| {
                let daemon = Arc::clone(&daemon);
                let request = request.clone();
                scope.spawn(move || daemon.submit(request))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let admitted: Vec<_> = outcomes.iter().filter(|o| o.is_ok()).collect();
    let rejected = outcomes
        .iter()
        .filter(|o| matches!(o, Err(SubmitError::Rejected { retry_after_ms: 3 })))
        .count();
    assert_eq!(admitted.len(), 2, "exactly queue_bound submissions are admitted");
    assert_eq!(rejected, submissions - 2, "every overflow is a retryable rejection");
    let stats = daemon.stats();
    assert_eq!(stats.requests_rejected, (submissions - 2) as u64);
    assert_eq!(stats.queue_depths, vec![2], "rejections buffered nothing");

    // Un-pause: the admitted requests complete with identical bytes, and a
    // rejected client's retry now succeeds and reproduces the same bytes.
    daemon.resume().unwrap();
    let mut replies = Vec::new();
    for rx in outcomes.into_iter().flatten() {
        let response = rx.recv().unwrap();
        assert_eq!(response.status, "ok", "{}", response.message);
        replies.push(response.samples);
    }
    assert_eq!(replies[0], replies[1], "queued twins must agree");
    let retried = daemon.dispatch(request);
    assert_eq!(retried.status, "ok", "{}", retried.message);
    assert_eq!(retried.samples, replies[0], "a retry reproduces the rejected request's bytes");
    assert_eq!(daemon.stats().requests_completed, 3);
    daemon.shutdown();
}

#[test]
fn co_running_noise_does_not_perturb_a_request() {
    // A victim request served alone must match the same request served
    // while a barrage of unrelated traffic churns the same two workers,
    // queues, and scratch pools.
    let victim = GenRequest::generate(1, RequestSpec::verification(42), tables());
    let alone = {
        let daemon = Daemon::start(ServeConfig::with_shards(2)).unwrap();
        let r = daemon.dispatch(victim.clone());
        daemon.shutdown();
        r.samples
    };
    let daemon = Daemon::start(ServeConfig::with_shards(2)).unwrap();
    let under_load = thread::scope(|scope| {
        let noise_makers: Vec<_> = (0..4)
            .map(|i| {
                let daemon = &daemon;
                scope.spawn(move || {
                    for round in 0..6 {
                        let spec = RequestSpec::qa(1000 + i * 100 + round);
                        let response =
                            daemon.dispatch(GenRequest::generate(900 + i, spec, tables()));
                        assert_eq!(response.status, "ok", "{}", response.message);
                    }
                })
            })
            .collect();
        let samples = daemon.dispatch(victim.clone()).samples;
        for h in noise_makers {
            h.join().unwrap();
        }
        samples
    });
    assert_eq!(alone, under_load, "co-running requests must not leak into the RNG namespace");
    daemon.shutdown();
}
