//! Telemetry integration tests: the [`uctr::PipelineReport`] counters must
//! be deterministic, thread-count-invariant, and consistent with the samples
//! the pipeline actually returns.

// Integration-test helpers run outside #[cfg(test)], so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used)]

use corpora::{tatqa_like, wikisql_like, CorpusConfig};
use uctr::{PipelineReport, ProgramKind, Sample, TableWithContext, UctrConfig, UctrPipeline};

fn inputs() -> Vec<TableWithContext> {
    tatqa_like(CorpusConfig::tiny()).unlabeled
}

/// Full-content fingerprint of a sample list (Sample is Serialize).
fn fingerprint(samples: &[Sample]) -> Vec<String> {
    samples.iter().map(|s| serde_json::to_string(s).unwrap()).collect()
}

#[test]
fn report_accompanies_identical_samples() {
    let pipeline = UctrPipeline::new(UctrConfig::qa());
    let inputs = inputs();
    let (samples, report) = pipeline.generate_with_report(&inputs);
    let plain = pipeline.generate(&inputs);
    assert_eq!(fingerprint(&samples), fingerprint(&plain));
    assert_eq!(report.accepted(), samples.len() as u64);
    assert_eq!(report.inputs_total, inputs.len() as u64);
}

#[test]
fn thread_count_does_not_change_samples_or_counters() {
    let pipeline = UctrPipeline::new(UctrConfig::qa());
    let inputs = inputs();
    let (seq, seq_report) = pipeline.generate_with_report(&inputs);
    for threads in [2, 8] {
        let (par, par_report) = pipeline.generate_parallel_with_report(&inputs, threads);
        assert_eq!(fingerprint(&seq), fingerprint(&par), "samples diverged at {threads} threads");
        assert!(
            seq_report.deterministic_eq(&par_report),
            "counters diverged at {threads} threads:\n{}\nvs\n{}",
            seq_report.summary(),
            par_report.summary()
        );
        assert_eq!(par_report.threads, threads as u64);
    }
}

#[test]
fn unknown_injection_is_thread_invariant_and_counted() {
    let mut cfg = UctrConfig::verification();
    cfg.unknown_rate = 0.3;
    let pipeline = UctrPipeline::new(cfg);
    // Wiki tables have distinct titles; injection skips same-title pairs, so
    // single-title finance inputs would inject nothing.
    let inputs = wikisql_like(CorpusConfig::tiny()).unlabeled;
    let (seq, seq_report) = pipeline.generate_with_report(&inputs);
    let (par, par_report) = pipeline.generate_parallel_with_report(&inputs, 4);
    assert_eq!(fingerprint(&seq), fingerprint(&par));
    assert!(seq_report.deterministic_eq(&par_report));
    let unknowns =
        seq.iter().filter(|s| s.label == uctr::Label::Verdict(uctr::Verdict::Unknown)).count();
    assert_eq!(seq_report.unknown_injected, unknowns as u64);
    assert!(unknowns > 0, "unknown_rate 0.3 should inject at least one Unknown");
}

#[test]
fn accepted_counts_partition_samples_by_kind() {
    for cfg in [UctrConfig::qa(), UctrConfig::verification()] {
        let pipeline = UctrPipeline::new(cfg);
        let (samples, report) = pipeline.generate_with_report(&inputs());
        let mut by_kind = [("sql", 0u64), ("logic", 0), ("arith", 0), ("none", 0)];
        for s in &samples {
            let i = match s.program {
                ProgramKind::Sql(_) => 0,
                ProgramKind::Logic(_) => 1,
                ProgramKind::Arith(_) => 2,
                ProgramKind::None => 3,
            };
            by_kind[i].1 += 1;
        }
        let reported = report.accepted_by_kind();
        for (name, count) in by_kind {
            assert_eq!(
                reported.get(name).copied().unwrap_or(0),
                count,
                "kind {name} accepted count mismatch"
            );
        }
        assert_eq!(report.accepted(), samples.len() as u64);
    }
}

#[test]
fn funnel_is_monotone_per_kind() {
    let (_, report) = UctrPipeline::new(UctrConfig::qa()).generate_with_report(&inputs());
    for k in &report.kinds {
        assert!(k.attempted >= k.instantiated, "{}: attempted < instantiated", k.kind);
        assert!(k.instantiated >= k.executed, "{}: instantiated < executed", k.kind);
        if k.kind != "none" {
            // `none` (programless text-only) never passes through the
            // execute stage, so this leg only holds for real programs.
            assert!(k.executed >= k.accepted, "{}: executed < accepted", k.kind);
        }
        // Every attempt ends in exactly one outcome: accepted or one
        // recorded discard (including post-execution source filters).
        let discarded: u64 = k.discards.iter().map(|d| d.count).sum();
        assert_eq!(
            k.attempted,
            k.accepted + discarded,
            "{}: funnel leak — attempted {} != accepted {} + discarded {}",
            k.kind,
            k.attempted,
            k.accepted,
            discarded
        );
    }
}

#[test]
fn source_acceptance_partitions_samples() {
    let (samples, report) = UctrPipeline::new(UctrConfig::qa()).generate_with_report(&inputs());
    let total: u64 = report.sources.iter().map(|s| s.accepted).sum();
    assert_eq!(total, samples.len() as u64);
    for s in &report.sources {
        assert!(s.attempted >= s.accepted, "{}: accepted exceeds attempts", s.source);
    }
}

#[test]
fn report_json_round_trips() {
    let (_, report) = UctrPipeline::new(UctrConfig::verification()).generate_with_report(&inputs());
    let json = report.to_json();
    let back = PipelineReport::from_json(&json).expect("report JSON must parse back");
    assert_eq!(report, back);
    // And the deterministic view agrees with itself.
    assert!(report.deterministic_eq(&back));
}

#[test]
fn timings_cover_the_work_that_happened() {
    let bench = wikisql_like(CorpusConfig::tiny());
    let (_, report) = UctrPipeline::new(UctrConfig::qa()).generate_with_report(&bench.unlabeled);
    // Instantiation/NL-generation ran, so their histograms must be populated
    // and internally consistent (bucket sums equal the recorded count).
    for t in &report.timings {
        let bucket_sum: u64 = t.log2_ns_buckets.iter().sum();
        assert_eq!(bucket_sum, t.count, "{}: histogram buckets disagree with count", t.name);
        if t.count > 0 {
            assert!(t.total_ns > 0, "{}: recorded events but zero total time", t.name);
            assert!(t.mean_ns() > 0);
        }
    }
    let instantiate = report.timings.iter().find(|t| t.name == "instantiate").unwrap();
    assert!(instantiate.count > 0, "instantiation must have been timed");
}
