//! Integration tests across crates: the full Algorithm 1 pipeline, label
//! faithfulness of synthetic data, and the complete unsupervised
//! train-evaluate loop.

// Integration-test helpers run outside #[cfg(test)], so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used)]

use uctr::{
    generate_mqaqg, EvidenceType, MqaQgConfig, ProgramKind, Sample, UctrConfig, UctrPipeline,
    Verdict,
};

fn tatqa_inputs() -> Vec<uctr::TableWithContext> {
    corpora::tatqa_like(corpora::CorpusConfig::tiny()).unlabeled
}

fn wiki_inputs() -> Vec<uctr::TableWithContext> {
    corpora::wikisql_like(corpora::CorpusConfig::tiny()).unlabeled
}

/// Every synthetic verification sample's recorded program must execute on
/// its own evidence-generating table to the labeled truth value. (For
/// table-split samples the program ran on the full table, so we check on
/// the reconstructed evidence: sub-table + extracted sentence row.)
#[test]
fn verification_labels_are_execution_faithful() {
    let pipeline = UctrPipeline::new(UctrConfig {
        noise: nlgen::NoiseConfig::off(),
        ..UctrConfig::verification()
    });
    let samples = pipeline.generate(&wiki_inputs());
    assert!(samples.len() > 50, "too few samples: {}", samples.len());
    let mut checked = 0;
    for s in &samples {
        let ProgramKind::Logic(prog) = &s.program else { continue };
        // Table-only samples: program must evaluate to the label on the table.
        if s.evidence != EvidenceType::TableOnly {
            continue;
        }
        let expr = logicforms::parse(prog).expect("stored program parses");
        let truth = logicforms::evaluate_truth(&expr, &s.table).expect("stored program executes");
        let expected = s.label.as_verdict().unwrap();
        if expected == Verdict::Unknown {
            continue; // unknowns were re-paired with foreign evidence
        }
        assert_eq!(
            truth,
            expected == Verdict::Supported,
            "label mismatch for claim `{}` / program `{prog}`",
            s.text
        );
        checked += 1;
    }
    assert!(checked > 20, "only {checked} table-only samples checked");
}

/// Every synthetic QA sample's program re-executes to the stored answer.
#[test]
fn qa_answers_are_execution_faithful() {
    let pipeline =
        UctrPipeline::new(UctrConfig { noise: nlgen::NoiseConfig::off(), ..UctrConfig::qa() });
    let samples = pipeline.generate(&tatqa_inputs());
    let mut checked = 0;
    for s in &samples {
        if s.evidence != EvidenceType::TableOnly {
            continue;
        }
        let answer = s.label.as_answer().unwrap();
        match &s.program {
            ProgramKind::Sql(q) => {
                let stmt = sqlexec::parse(q).expect("stored SQL parses");
                let r = sqlexec::execute(&stmt, &s.table).expect("stored SQL executes");
                assert_eq!(r.answer_text(), answer, "answer mismatch for `{q}`");
            }
            ProgramKind::Arith(p) => {
                let prog = arithexpr::parse(p).expect("stored arith parses");
                let out = arithexpr::execute(&prog, &s.table).expect("stored arith executes");
                assert_eq!(out.answer.to_string(), answer, "answer mismatch for `{p}`");
            }
            _ => continue,
        }
        checked += 1;
    }
    assert!(checked > 20, "only {checked} samples checked");
}

/// Split samples must keep their evidence consistent: the sub-table plus
/// the sentence must still contain all the information the gold answer
/// needs (the sentence faithfully carries the removed row).
#[test]
fn split_samples_carry_one_sentence_and_smaller_table() {
    let pipeline =
        UctrPipeline::new(UctrConfig { noise: nlgen::NoiseConfig::off(), ..UctrConfig::qa() });
    let samples = pipeline.generate(&wiki_inputs());
    let split: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.evidence == EvidenceType::TableText && s.context.len() == 1)
        .collect();
    assert!(!split.is_empty(), "no table-split samples generated");
    for s in split {
        assert!(!s.context[0].is_empty());
        assert!(s.table.n_rows() >= 1);
        // The sentence must be extractable back into the table's schema
        // (Text-To-Table can restore the row).
        let restored = textops::extract_record(&s.context[0], &s.table);
        assert!(restored.is_some(), "sentence not machine-readable: {}", s.context[0]);
    }
}

/// The complete unsupervised loop: synthesize on unlabeled tables, train,
/// evaluate on gold dev — and beat both random and MQA-QG.
#[test]
fn unsupervised_loop_beats_baselines() {
    let b = corpora::semtab_like(corpora::CorpusConfig {
        n_tables: 80,
        train_per_table: 6,
        eval_per_table: 10,
        seed: 3,
    });
    let synth = UctrPipeline::new(UctrConfig { unknown_rate: 0.06, ..UctrConfig::verification() })
        .generate(&b.unlabeled);
    let uctr_model = models::VerifierModel::train(
        &synth,
        models::VerdictSpace::ThreeWay,
        models::EvidenceView::Full,
    );
    let mqa = generate_mqaqg(&b.unlabeled, &MqaQgConfig::verification());
    let mqa_model = models::VerifierModel::train(
        &mqa,
        models::VerdictSpace::ThreeWay,
        models::EvidenceView::Full,
    );
    let acc = |m: &models::VerifierModel| m.accuracy(&b.gold.dev);
    assert!(
        acc(&uctr_model) > acc(&mqa_model),
        "UCTR {:.3} must beat MQA-QG {:.3}",
        acc(&uctr_model),
        acc(&mqa_model)
    );
    assert!(acc(&uctr_model) > 0.45, "UCTR too weak: {:.3}", acc(&uctr_model));
}

/// Supervised beats unsupervised, and few-shot + UCTR beats few-shot alone
/// (the paper's headline orderings).
#[test]
fn headline_orderings_hold() {
    let b = corpora::wikisql_like(corpora::CorpusConfig {
        n_tables: 80,
        train_per_table: 8,
        eval_per_table: 10,
        seed: 5,
    });
    let synth = UctrPipeline::new(UctrConfig {
        use_arith: false,
        samples_per_table: 16,
        ..UctrConfig::qa()
    })
    .generate(&b.unlabeled);
    let supervised = models::QaModel::train(&b.gold.train);
    let unsupervised = models::QaModel::train(&synth);
    let em = |m: &models::QaModel| {
        b.gold
            .dev
            .iter()
            .filter(|s| {
                tabular::text::normalize_answer(&m.predict(s))
                    == tabular::text::normalize_answer(s.label.as_answer().unwrap())
            })
            .count() as f64
            / b.gold.dev.len() as f64
    };
    let em_sup = em(&supervised);
    let em_unsup = em(&unsupervised);
    assert!(em_sup > em_unsup, "supervised {em_sup:.3} <= unsupervised {em_unsup:.3}");
    assert!(em_unsup > 0.2, "unsupervised too weak: {em_unsup:.3}");
}

/// The ablation ordering: the full pipeline yields at least as many joint
/// table-text samples as the -w/o T2T variant (which yields none).
#[test]
fn t2t_ablation_removes_joint_samples() {
    let inputs = tatqa_inputs();
    let full = UctrPipeline::new(UctrConfig::qa()).generate(&inputs);
    let ablated = UctrPipeline::new(UctrConfig::qa().without_t2t()).generate(&inputs);
    let joint = |ss: &[Sample]| ss.iter().filter(|s| s.evidence == EvidenceType::TableText).count();
    assert!(joint(&full) > 0);
    assert_eq!(joint(&ablated), 0);
}

/// MQA-QG emits only simple (program-free) samples — the property the
/// paper's comparison rests on.
#[test]
fn mqaqg_is_program_free() {
    let samples = generate_mqaqg(&wiki_inputs(), &MqaQgConfig::qa());
    assert!(!samples.is_empty());
    assert!(samples.iter().all(|s| s.program == ProgramKind::None));
}
