//! Abstract-interpretation soundness property test.
//!
//! The per-crate `absint` passes claim to *over*-approximate every concrete
//! behavior: for any table and any RNG stream, an instantiated program's
//! concrete result must be admitted by the template's joined
//! [`tabular::AbsSummary`], and an unsatisfied (tightened)
//! [`tabular::SchemaRequirement`] must imply instantiation fails. This
//! sweep pins both halves of that contract for every builtin and mined
//! template over the kernel-stressing table zoo (the same fixtures as
//! `kernel_parity`, which exercise non-finite spellings, all-null columns,
//! duplicate keys and 1-row tables) plus the two mining probe tables
//! (where instantiation actually succeeds often), across 32 seeds per
//! (template, table) pair:
//!
//! * **arith** — a `Number` answer lies in `summary.value`; a `YesNo`
//!   answer is admitted by `summary.truth`;
//! * **logic** — the claim's gold truth is admitted by `summary.truth`; in
//!   particular a template convicted always-true can never mint a
//!   `Refuted` label;
//! * **sql** — a statically-empty row set (`summary.rows`) keeps zero
//!   rows; a constant-output (A001 echo) conviction means every emitted
//!   cell loosely equals the query constant its column is pinned to;
//! * **all kinds** — `requirement.satisfied_by == false` implies
//!   `try_instantiate` errors (the prefilter may only skip guaranteed
//!   failures).
//!
//! A final test calibrates the static discard-cost model: the per-kind
//! mean `survival` over the builtin bank must land within a generous band
//! of the accept rate the live pipeline's `PipelineReport` funnel measures.

// Integration-test helpers run outside #[cfg(test)], so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use tabular::{ExecContext, Kleene, Table, Value};
use uctr::{AnyTemplate, KindSlot, TemplateBank};

const SEEDS: u64 = 32;

/// The kernel-stressing zoo of `kernel_parity`, plus the two mining probe
/// tables so the sweep also covers (template, table) pairs where
/// instantiation usually *succeeds*.
fn zoo() -> Vec<Table> {
    let grids: Vec<Vec<Vec<&str>>> = vec![
        vec![vec!["name", "score", "rank"], vec!["Solo", "42", "1"]],
        vec![
            vec!["name", "score", "note"],
            vec!["Ada", "10", "fast"],
            vec!["Bel", "n/a", "slow"],
            vec!["Cyd", "30.5", "steady"],
            vec!["Dee", "", "quiet"],
            vec!["Eli", "-7", "loud"],
        ],
        vec![
            vec!["name", "weird", "ok"],
            vec!["P", "NaN", "1"],
            vec!["Q", "inf", "2"],
            vec!["R", "-inf", "3"],
            vec!["S", "nan", "4"],
        ],
        vec![
            vec!["name", "empty", "constant"],
            vec!["A", "", "5"],
            vec!["B", "", "5"],
            vec!["C", "", "5"],
            vec!["D", "", "5"],
        ],
        vec![
            vec!["name", "pts", "group"],
            vec!["T1", "9", "red"],
            vec!["T2", "9", "blue"],
            vec!["T3", "9", "red"],
            vec!["T4", "2", "blue"],
            vec!["T5", "2", "red"],
        ],
        vec![
            vec!["name", "when", "delta"],
            vec!["U", "2001-03-04", "-1.5"],
            vec!["V", "1999-12-31", "0"],
            vec!["W", "2020-06-15", "2.25"],
            vec!["X", "2010-01-01", "-0.75"],
        ],
    ];
    let mut tables: Vec<Table> = grids
        .into_iter()
        .enumerate()
        .map(|(i, grid)| Table::from_strings(format!("azoo {i}"), &grid).unwrap())
        .collect();
    tables.push(uctr::mining::sql_probe_table());
    tables.push(uctr::mining::fin_probe_table());
    tables
}

/// The `=`-pinned constants of an instantiated statement's top-level `and`
/// spine: `(output column, pinned literal)` pairs. Mirrors the A001 echo
/// conviction, which promises every emitted cell of such a column loosely
/// equals the pin.
fn eq_pins(stmt: &sqlexec::SelectStmt) -> Vec<(sqlexec::ColumnRef, Value)> {
    fn spine(c: &sqlexec::Cond, out: &mut Vec<(sqlexec::ColumnRef, Value)>) {
        match c {
            sqlexec::Cond::And(a, b) => {
                spine(a, out);
                spine(b, out);
            }
            sqlexec::Cond::Compare { op: sqlexec::CmpOp::Eq, lhs, rhs } => {
                match (lhs, rhs) {
                    (sqlexec::Expr::Column(c), sqlexec::Expr::Literal(v))
                    | (sqlexec::Expr::Literal(v), sqlexec::Expr::Column(c)) => {
                        out.push((c.clone(), v.clone()))
                    }
                    _ => {}
                };
            }
            sqlexec::Cond::Compare { .. } | sqlexec::Cond::Or(..) => {}
        }
    }
    let mut out = Vec::new();
    if let Some(w) = &stmt.where_clause {
        spine(w, &mut out);
    }
    out
}

fn check_sql(t: &sqlexec::SqlTemplate, a: &tabular::TemplateAnalysis, table: &Table, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sig = t.signature();
    let Ok(stmt) = t.try_instantiate(table, &mut rng) else { return };
    let Ok(result) = sqlexec::execute(&stmt, table) else { return };

    let plain_select = stmt.group_by.is_none()
        && stmt
            .items
            .iter()
            .all(|i| matches!(i, sqlexec::SelectItem::Expr(_) | sqlexec::SelectItem::Star));
    if a.summary.rows.is_always_empty() && plain_select {
        assert_eq!(
            result.rows.len(),
            0,
            "sql `{sig}` on `{}` seed {seed}: statically-empty row set kept {} row(s) for `{stmt}`",
            table.title,
            result.rows.len()
        );
    }
    if plain_select {
        assert!(
            a.summary.rows.can_many || result.rows.len() <= 1,
            "sql `{sig}` on `{}` seed {seed}: cardinality {} says at most one row, \
             `{stmt}` kept {}",
            table.title,
            a.summary.rows,
            result.rows.len()
        );
    }
    // A lone count(*) answers inside the cardinality lattice's bridge.
    if let [sqlexec::SelectItem::Aggregate { func: sqlexec::AggFunc::Count, arg: None, .. }] =
        stmt.items.as_slice()
    {
        let n = result.rows[0][0].as_number().unwrap();
        assert!(
            a.summary.value.contains(n),
            "sql `{sig}` on `{}` seed {seed}: count {n} outside {} for `{stmt}`",
            table.title,
            a.summary.value
        );
    }
    // A001 echo conviction: every emitted cell loosely equals its pin.
    if a.degeneracies.iter().any(|d| d.code == "A001" && d.locus == "select") {
        let pins = eq_pins(&stmt);
        for (idx, item) in stmt.items.iter().enumerate() {
            let sqlexec::SelectItem::Expr(sqlexec::Expr::Column(col)) = item else { continue };
            let Some((_, pin)) = pins.iter().find(|(c, _)| c == col) else { continue };
            for row in &result.rows {
                assert!(
                    row[idx].loosely_equals(pin),
                    "sql `{sig}` on `{}` seed {seed}: A001 says every output cell equals \
                     the pin {pin:?}, got {:?} from `{stmt}`",
                    table.title,
                    row[idx]
                );
            }
        }
    }
}

fn check_logic(
    t: &logicforms::LfTemplate,
    a: &tabular::TemplateAnalysis,
    table: &Table,
    seed: u64,
) {
    let sig = t.signature();
    for desired in [false, true] {
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(claim) = t.try_instantiate(table, &mut rng, desired) else { continue };
        assert!(
            a.summary.truth.admits(claim.truth),
            "logic `{sig}` on `{}` seed {seed}: concrete truth {} not admitted by {} for `{}`",
            table.title,
            claim.truth,
            a.summary.truth,
            claim.expr
        );
        // The conviction behind pruning: an always-true template can never
        // produce a Refuted label (and vice versa).
        if a.summary.truth == Kleene::True {
            assert!(claim.truth, "logic `{sig}`: always-true template minted a false label");
        }
        if a.summary.truth == Kleene::False {
            assert!(!claim.truth, "logic `{sig}`: always-false template minted a true label");
        }
    }
}

fn check_arith(t: &arithexpr::AeTemplate, a: &tabular::TemplateAnalysis, table: &Table, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sig = t.signature();
    let Ok(inst) = t.try_instantiate(table, &mut rng) else { return };
    match inst.outcome.answer {
        arithexpr::AeAnswer::Number(x) => assert!(
            a.summary.value.contains(x),
            "arith `{sig}` on `{}` seed {seed}: {x} outside {} for `{}`",
            table.title,
            a.summary.value,
            inst.program
        ),
        arithexpr::AeAnswer::YesNo(b) => assert!(
            a.summary.truth.admits(b),
            "arith `{sig}` on `{}` seed {seed}: verdict {b} not admitted by {} for `{}`",
            table.title,
            a.summary.truth,
            inst.program
        ),
    }
}

/// Requirement soundness: an unsatisfied (tightened) requirement means
/// instantiation fails on this table under every stream. This is the
/// contract that lets `TemplateBank::feasible_set` prune attempts.
fn check_requirement(any: &AnyTemplate, a: &tabular::TemplateAnalysis, table: &Table, seed: u64) {
    let ctx = ExecContext::new(table);
    if a.requirement.satisfied_by(&ctx) {
        return;
    }
    let sig = any.as_program().signature();
    let mut rng = StdRng::seed_from_u64(seed);
    let failed = match any {
        AnyTemplate::Sql(t) => t.try_instantiate(table, &mut rng).is_err(),
        AnyTemplate::Logic(t) => {
            t.try_instantiate(table, &mut rng, false).is_err()
                && t.try_instantiate(table, &mut rng, true).is_err()
        }
        AnyTemplate::Arith(t) => t.try_instantiate(table, &mut rng).is_err(),
    };
    assert!(
        failed,
        "`{sig}` on `{}` seed {seed}: requirement unsatisfied yet instantiation succeeded \
         — the prefilter would wrongly skip a viable attempt",
        table.title
    );
}

fn sweep(bank: &TemplateBank, tables: &[Table], seeds: u64) {
    for any in bank.templates() {
        let a = any.as_program().analyze();
        assert!(a.issues.is_empty(), "bank template with issues: {:?}", a.issues);
        assert!(
            (0.0..=1.0).contains(&a.survival),
            "survival {} out of range for `{}`",
            a.survival,
            any.as_program().signature()
        );
        for table in tables {
            for seed in 0..seeds {
                let seed = seed * 6151 + 29;
                check_requirement(any, &a, table, seed);
                match any {
                    AnyTemplate::Sql(t) => check_sql(t, &a, table, seed),
                    AnyTemplate::Logic(t) => check_logic(t, &a, table, seed),
                    AnyTemplate::Arith(t) => check_arith(t, &a, table, seed),
                }
            }
        }
    }
}

#[test]
fn builtin_templates_are_abstractly_sound() {
    sweep(&TemplateBank::builtin(), &zoo(), SEEDS);
}

#[test]
fn mined_templates_are_abstractly_sound() {
    sweep(&uctr::mined_bank(uctr::mining::SYNTHETIC_SEED), &zoo(), SEEDS);
}

#[test]
fn builtin_bank_is_degeneracy_free() {
    for any in TemplateBank::builtin().templates() {
        let a = any.as_program().analyze();
        assert!(
            a.degeneracies.is_empty(),
            "builtin `{}` convicted: {:?}",
            any.as_program().signature(),
            a.degeneracies
        );
    }
}

/// The discard-cost model's calibration gate: the per-kind mean survival
/// estimate over the builtin bank must land within a generous band of the
/// accept rate the live pipeline funnel measures on the golden-style
/// inputs. The band is wide by design — the model ranks templates, it does
/// not predict absolute throughput — but it pins the estimate to reality
/// closely enough that a constant-1.0 (or constant-0.0) stub fails.
#[test]
fn survival_model_is_calibrated_against_the_pipeline_funnel() {
    use uctr::{TableWithContext, UctrConfig, UctrPipeline};

    let inputs: Vec<TableWithContext> = vec![
        TableWithContext {
            table: uctr::mining::sql_probe_table().into(),
            paragraph: None,
            topic: "sports".into(),
        },
        TableWithContext {
            table: uctr::mining::fin_probe_table().into(),
            paragraph: None,
            topic: "finance".into(),
        },
    ];
    let mut config = UctrConfig::qa();
    config.use_logic = true;
    let (_, report) = UctrPipeline::new(config).generate_with_report(&inputs);

    let bank = TemplateBank::builtin();
    for kind in [KindSlot::Sql, KindSlot::Logic, KindSlot::Arith] {
        let survivals: Vec<f64> = bank
            .templates()
            .iter()
            .filter(|t| t.kind() == kind)
            .map(|t| t.as_program().analyze().survival)
            .collect();
        let mean = survivals.iter().sum::<f64>() / survivals.len() as f64;
        let Some(k) = report.kinds.iter().find(|k| k.kind == kind.name()) else { continue };
        let tried = k.attempted - k.prefiltered;
        if tried < 20 {
            continue;
        }
        let rate = k.accepted as f64 / tried as f64;
        assert!(
            (mean - rate).abs() <= 0.35,
            "{}: mean survival estimate {mean:.3} vs measured accept rate {rate:.3} \
             ({}/{tried}) — recalibrate the per-construct factors",
            kind.name(),
            k.accepted
        );
    }
}
