//! Golden fixed-seed pipeline output (refactor guard).
//!
//! The program-layer refactor (ProgramTemplate trait + ExecContext) must be
//! behavior-preserving: for a fixed seed and fixed inputs, the generated
//! samples and the deterministic telemetry counters must be *identical* to
//! the pre-refactor pipeline. These digests were captured from the direct
//! `run_sql`/`run_arith`/`run_logic` implementation; any RNG-draw or
//! counter-order drift in the unified `run_program` changes them.

// Integration-test helpers run outside #[cfg(test)], so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used)]

use tabular::Table;
use uctr::{TableWithContext, UctrConfig, UctrPipeline};

/// FNV-1a 64-bit, so the expectation is a single stable integer per run.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn inputs() -> Vec<TableWithContext> {
    let teams = Table::from_strings(
        "Teams",
        &[
            vec!["team", "wins", "losses", "founded"],
            vec!["Sharks", "12", "4", "1990-05-01"],
            vec!["Lions", "9", "7", "1985-03-12"],
            vec!["Bears", "15", "1", "2001-08-23"],
            vec!["Wolves", "7", "9", "1999-11-30"],
        ],
    )
    .unwrap();
    let budgets = Table::from_strings(
        "Budgets",
        &[
            vec!["department", "budget", "staff"],
            vec!["Research", "1200", "30"],
            vec!["Marketing", "800", "18"],
            vec!["Operations", "2100", "55"],
        ],
    )
    .unwrap();
    let albums = Table::from_strings(
        "Albums",
        &[
            vec!["album", "year", "sales", "certified"],
            vec!["Dawn", "1998", "1500000", "yes"],
            vec!["Harbor", "2003", "870000", "no"],
            vec!["Meridian", "2010", "2300000", "yes"],
            vec!["Atlas", "2015", "640000", "no"],
            vec!["Voyage", "2019", "1100000", "yes"],
        ],
    )
    .unwrap();
    vec![
        TableWithContext {
            table: teams.into(),
            paragraph: Some(
                "The Sharks were founded on 1990-05-01 and have 12 wins this season. \
                 The Bears lead the league with 15 wins and only 1 loss."
                    .into(),
            ),
            topic: "sports".into(),
        },
        TableWithContext {
            table: budgets.into(),
            paragraph: Some(
                "Research has a budget of 1200 with 30 staff. \
                 Operations is the largest department with a budget of 2100."
                    .into(),
            ),
            topic: "finance".into(),
        },
        TableWithContext { table: albums.into(), paragraph: None, topic: "music".into() },
    ]
}

/// One canonical byte rendering of a run: every sample field (via `Debug`,
/// which round-trips f64s exactly) plus the deterministic report sections.
fn run_digests(config: UctrConfig) -> (u64, u64, u64) {
    let pipeline = UctrPipeline::new(config);
    let (samples, report) = pipeline.generate_with_report(&inputs());
    let sample_digest = fnv1a(format!("{samples:?}").as_bytes());
    let counters = format!(
        "{:?}",
        (
            report.inputs_total,
            report.inputs_degenerate,
            report.unknown_injected,
            &report.kinds,
            &report.sources,
        )
    );
    (sample_digest, fnv1a(counters.as_bytes()), report.accepted())
}

#[test]
fn qa_run_is_byte_identical_to_prerefactor() {
    let (samples, counters, accepted) = run_digests(UctrConfig::qa());
    assert_eq!(
        (samples, counters, accepted),
        (EXPECT_QA.0, EXPECT_QA.1, EXPECT_QA.2),
        "fixed-seed QA output drifted from the pre-refactor pipeline"
    );
}

#[test]
fn verification_run_is_byte_identical_to_prerefactor() {
    let (samples, counters, accepted) = run_digests(UctrConfig::verification());
    assert_eq!(
        (samples, counters, accepted),
        (EXPECT_VERIF.0, EXPECT_VERIF.1, EXPECT_VERIF.2),
        "fixed-seed verification output drifted from the pre-refactor pipeline"
    );
}

#[test]
fn alternate_seed_run_is_byte_identical_to_prerefactor() {
    let mut config = UctrConfig::qa();
    config.seed = 2024;
    config.use_logic = true;
    let (samples, counters, accepted) = run_digests(config);
    assert_eq!(
        (samples, counters, accepted),
        (EXPECT_ALT.0, EXPECT_ALT.1, EXPECT_ALT.2),
        "fixed-seed all-kinds output drifted from the pre-refactor pipeline"
    );
}

#[test]
fn golden_tables_are_never_prefiltered() {
    // Draw-order contract behind the byte-identity above: a prefilter skip
    // consumes zero RNG draws, whereas letting the instantiation sampler
    // fail consumes several — the two are NOT stream-equivalent. The
    // golden runs stay byte-identical with the prefilter enabled only
    // because these tables satisfy every builtin template requirement, so
    // the prefilter never fires on them. If a new builtin template or a
    // stronger requirement rule makes this fail, the digests must be
    // re-captured (they will have legitimately changed).
    for config in [UctrConfig::qa(), UctrConfig::verification()] {
        let (_, report) = UctrPipeline::new(config).generate_with_report(&inputs());
        assert_eq!(
            report.prefiltered(),
            0,
            "a golden table stopped satisfying a builtin requirement:\n{}",
            report.summary()
        );
    }
}

#[test]
fn tightened_requirements_never_drop_a_golden_sample() {
    // The abstract interpreter tightens SchemaRequirements (e.g.
    // `min_col_numeric_values` from constant nth ordinals). The byte
    // identity above survives that only because the tightening never fires
    // on a builtin template — the builtin nth ordinals are value holes, so
    // the joined requirement is exactly the pre-absint one and the
    // prefilter's draw-order contract is untouched. Pin that: should a
    // builtin template ever gain a tightened requirement, this fails
    // before the digests silently shift.
    for any in uctr::TemplateBank::builtin().templates() {
        let a = any.as_program().analyze();
        assert_eq!(
            a.requirement.min_col_numeric_values,
            0,
            "builtin `{}` gained a tightened numeric-values requirement; golden digests \
             must be re-captured deliberately",
            any.as_program().signature()
        );
        // And the tightened requirement still admits every golden table.
        for input in inputs() {
            let ctx = tabular::ExecContext::new(&input.table);
            assert!(
                a.requirement.satisfied_by(&ctx),
                "builtin `{}` is no longer feasible on golden table `{}`",
                any.as_program().signature(),
                input.table.title
            );
        }
    }
}

/// Prints current digests; run with `--nocapture` to regenerate the
/// constants above after an *intentional* behavior change.
#[test]
fn print_current_digests() {
    for (name, d) in [
        ("EXPECT_QA", run_digests(UctrConfig::qa())),
        ("EXPECT_VERIF", run_digests(UctrConfig::verification())),
        ("EXPECT_ALT", {
            let mut config = UctrConfig::qa();
            config.seed = 2024;
            config.use_logic = true;
            run_digests(config)
        }),
    ] {
        println!("const {name}: (u64, u64, u64) = ({:#x}, {:#x}, {});", d.0, d.1, d.2);
    }
}

// The sample digests (first components) are unchanged since the
// pre-refactor capture: the schema prefilter added alongside the counters'
// `prefiltered` field must not alter a single generated byte. The counter
// digests (second components) were re-captured when `KindReport` gained
// that field.
const EXPECT_QA: (u64, u64, u64) = (0x6d5a4d9013979880, 0xbe26621e2e7ec12d, 56);
const EXPECT_VERIF: (u64, u64, u64) = (0x648fbc6273502dd5, 0x434d9110cb2cb1b0, 56);
const EXPECT_ALT: (u64, u64, u64) = (0xb23eed0c8013e5d9, 0x4b9b471f893117b, 58);
