//! Kernel / scalar parity property test.
//!
//! The compiled columnar paths (`try_instantiate_in_with` + the
//! `execute_in_with` / `evaluate_in` executors, which read `ExecContext`
//! caches and `KernelScratch` buffers) must be *result-identical* to the
//! per-cell reference interpreters (`try_instantiate` / `execute` /
//! `evaluate` with no context). This sweep pins that contract for every
//! builtin and mined template over a zoo built to stress the kernels where
//! they diverge first — non-finite and mixed-type columns (the cached
//! numeric parse must classify cells exactly like `Value::as_number`),
//! filters that keep zero rows, all-null columns, duplicate keys (tie
//! handling in argmax/nth kernels), and 1-row tables — across 32 RNG seeds
//! per (template, table) pair.
//!
//! Both halves of each pair run from identically seeded RNGs, and after
//! the pair the streams must still coincide: the kernel path may not
//! consume a different number of draws than the scalar path even when both
//! fail (the pipeline's golden digests depend on draw-for-draw equality).

// Integration-test helpers run outside #[cfg(test)], so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tabular::{ExecContext, Table};
use uctr::{AnyTemplate, TemplateBank};

const SEEDS: u64 = 32;

/// Tables chosen to hit kernel edge cases, not to look like real data.
fn kernel_zoo() -> Vec<Table> {
    let grids: Vec<Vec<Vec<&str>>> = vec![
        // 1-row table: every "nth", "only", ordering and aggregate kernel
        // runs at its lower size bound.
        vec![vec!["name", "score", "rank"], vec!["Solo", "42", "1"]],
        // Mixed-type column: `score` holds numbers, text, and a null; the
        // kernel's cached parse and the interpreter's per-cell
        // `Value::as_number` must skip exactly the same cells.
        vec![
            vec!["name", "score", "note"],
            vec!["Ada", "10", "fast"],
            vec!["Bel", "n/a", "slow"],
            vec!["Cyd", "30.5", "steady"],
            vec!["Dee", "", "quiet"],
            vec!["Eli", "-7", "loud"],
        ],
        // Non-finite spellings: `nan`/`inf` do not survive `Value::parse`'s
        // is_finite filter, so the column is text to the type system even
        // though every cell *looks* numeric to a float parser.
        vec![
            vec!["name", "weird", "ok"],
            vec!["P", "NaN", "1"],
            vec!["Q", "inf", "2"],
            vec!["R", "-inf", "3"],
            vec!["S", "nan", "4"],
        ],
        // All-null numeric column and a constant column: aggregates over
        // empty gathers, and equality filters that keep everything or
        // nothing.
        vec![
            vec!["name", "empty", "constant"],
            vec!["A", "", "5"],
            vec!["B", "", "5"],
            vec!["C", "", "5"],
            vec!["D", "", "5"],
        ],
        // Duplicate keys: argmax/argmin/nth tie-breaking must pick the same
        // row on both paths.
        vec![
            vec!["name", "pts", "group"],
            vec!["T1", "9", "red"],
            vec!["T2", "9", "blue"],
            vec!["T3", "9", "red"],
            vec!["T4", "2", "blue"],
            vec!["T5", "2", "red"],
        ],
        // Dates mixed with plain numbers across columns; negative and
        // fractional values for comparison kernels.
        vec![
            vec!["name", "when", "delta"],
            vec!["U", "2001-03-04", "-1.5"],
            vec!["V", "1999-12-31", "0"],
            vec!["W", "2020-06-15", "2.25"],
            vec!["X", "2010-01-01", "-0.75"],
        ],
    ];
    grids
        .into_iter()
        .enumerate()
        .map(|(i, grid)| Table::from_strings(format!("kzoo {i}"), &grid).unwrap())
        .collect()
}

/// Debug renderings compare NaN-safe ("NaN" == "NaN") and cover every field
/// of the output, mirroring how the golden digests hash samples.
fn dbg<T: std::fmt::Debug>(v: &T) -> String {
    format!("{v:?}")
}

fn check_sql(t: &sqlexec::SqlTemplate, table: &Table, ctx: &ExecContext, seed: u64) {
    let mut scalar_rng = StdRng::seed_from_u64(seed);
    let mut kernel_rng = StdRng::seed_from_u64(seed);
    let mut scratch = sqlexec::SqlScratch::default();
    let scalar = t.try_instantiate(table, &mut scalar_rng);
    let kernel = t.try_instantiate_in_with(table, ctx, &mut kernel_rng, &mut scratch);
    let sig = t.signature();
    assert_eq!(
        scalar_rng.gen::<u64>(),
        kernel_rng.gen::<u64>(),
        "sql `{sig}` on `{}` seed {seed}: RNG draw streams diverged",
        table.title
    );
    assert_eq!(
        dbg(&scalar),
        dbg(&kernel),
        "sql `{sig}` on `{}` seed {seed}: instantiation diverged",
        table.title
    );
    if let Ok(stmt) = scalar {
        let scalar_out = sqlexec::execute(&stmt, table);
        let kernel_out = sqlexec::execute_in_with(&stmt, table, ctx, &mut scratch.kern);
        assert_eq!(
            dbg(&scalar_out),
            dbg(&kernel_out),
            "sql `{sig}` on `{}` seed {seed}: execution diverged for `{stmt}`",
            table.title
        );
    }
}

fn check_logic(t: &logicforms::LfTemplate, table: &Table, ctx: &ExecContext, seed: u64) {
    let mut scratch = logicforms::LfScratch::default();
    let sig = t.signature();
    for desired in [false, true] {
        let mut scalar_rng = StdRng::seed_from_u64(seed);
        let mut kernel_rng = StdRng::seed_from_u64(seed);
        let scalar = t.try_instantiate(table, &mut scalar_rng, desired);
        let kernel = t.try_instantiate_in_with(table, ctx, &mut kernel_rng, desired, &mut scratch);
        assert_eq!(
            scalar_rng.gen::<u64>(),
            kernel_rng.gen::<u64>(),
            "logic `{sig}` on `{}` seed {seed}: RNG draw streams diverged",
            table.title
        );
        assert_eq!(
            dbg(&scalar),
            dbg(&kernel),
            "logic `{sig}` on `{}` seed {seed}: instantiation diverged",
            table.title
        );
        if let Ok(claim) = scalar {
            let scalar_out = logicforms::evaluate(&claim.expr, table);
            let kernel_out = logicforms::evaluate_in(&claim.expr, table, ctx);
            assert_eq!(
                dbg(&scalar_out),
                dbg(&kernel_out),
                "logic `{sig}` on `{}` seed {seed}: evaluation diverged for `{}`",
                table.title,
                claim.expr
            );
            let scalar_truth = logicforms::evaluate_truth(&claim.expr, table);
            let kernel_truth = logicforms::evaluate_truth_in(&claim.expr, table, ctx);
            assert_eq!(
                dbg(&scalar_truth),
                dbg(&kernel_truth),
                "logic `{sig}` on `{}` seed {seed}: truth diverged for `{}`",
                table.title,
                claim.expr
            );
        }
    }
}

fn check_arith(t: &arithexpr::AeTemplate, table: &Table, ctx: &ExecContext, seed: u64) {
    let mut scalar_rng = StdRng::seed_from_u64(seed);
    let mut kernel_rng = StdRng::seed_from_u64(seed);
    let mut scratch = arithexpr::AeScratch::default();
    // Arithmetic instantiation executes internally, so this one comparison
    // covers both the sampling and the execution kernels.
    let scalar = t.try_instantiate(table, &mut scalar_rng);
    let kernel = t.try_instantiate_in_with(table, ctx, &mut kernel_rng, &mut scratch);
    let sig = t.signature();
    assert_eq!(
        scalar_rng.gen::<u64>(),
        kernel_rng.gen::<u64>(),
        "arith `{sig}` on `{}` seed {seed}: RNG draw streams diverged",
        table.title
    );
    assert_eq!(
        dbg(&scalar),
        dbg(&kernel),
        "arith `{sig}` on `{}` seed {seed}: instantiation diverged",
        table.title
    );
    if let Ok(inst) = scalar {
        let scalar_out = arithexpr::execute(&inst.program, table);
        let kernel_out = arithexpr::execute_in(&inst.program, table, ctx);
        assert_eq!(
            dbg(&scalar_out),
            dbg(&kernel_out),
            "arith `{sig}` on `{}` seed {seed}: re-execution diverged for `{}`",
            table.title,
            inst.program
        );
    }
}

fn sweep(bank: &TemplateBank, tables: &[Table], seeds: u64) {
    for table in tables {
        let ctx = ExecContext::new(table);
        for any in bank.templates() {
            for seed in 0..seeds {
                let seed = seed * 6151 + 29;
                match any {
                    AnyTemplate::Sql(t) => check_sql(t, table, &ctx, seed),
                    AnyTemplate::Logic(t) => check_logic(t, table, &ctx, seed),
                    AnyTemplate::Arith(t) => check_arith(t, table, &ctx, seed),
                }
            }
        }
    }
}

#[test]
fn builtin_templates_kernel_scalar_parity() {
    sweep(&TemplateBank::builtin(), &kernel_zoo(), SEEDS);
}

#[test]
fn mined_templates_kernel_scalar_parity() {
    sweep(&uctr::mined_bank(uctr::mining::SYNTHETIC_SEED), &kernel_zoo(), SEEDS);
}
