//! Financial question answering over hybrid table + text evidence — the
//! TAT-QA scenario that motivates UCTR's arithmetic programs and joint
//! table-text operators.
//!
//! ```sh
//! cargo run --example financial_qa --release
//! ```

// Examples are demonstration entry points: println! is their output and unwrap on known-good literals keeps them readable.
#![allow(clippy::unwrap_used, clippy::print_stdout)]

use models::QaModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabular::Table;
use uctr::{Sample, TableWithContext, UctrConfig, UctrPipeline};

fn main() {
    // A financial-report table with its surrounding text (the paragraph
    // carries a record that is NOT in the table, so joint reasoning and the
    // Text-To-Table operator both matter).
    let table = Table::from_strings(
        "Consolidated statements",
        &[
            vec!["item", "2019", "2018"],
            vec!["Revenue", "8800", "8000"],
            vec!["Operating costs", "6100", "5900"],
            vec!["Stockholders' equity", "3200", "4000"],
            vec!["Net income", "1400", "1250"],
        ],
    )
    .expect("rectangular grid");
    let paragraph = "The fiscal year closed without restatements. \
        Deferred revenue has a 2019 of 940 and a 2018 of 860. \
        Auditors signed off in March.";

    // Synthesize QA training data: SQL programs for span questions,
    // arithmetic expressions (FinQA-style) for numeracy, table splitting
    // and expansion for joint table-text samples.
    let pipeline = UctrPipeline::new(UctrConfig::qa());
    let mut rng = StdRng::seed_from_u64(5);
    let mut inputs = vec![TableWithContext {
        table: table.clone().into(),
        paragraph: Some(paragraph.to_string()),
        topic: "finance".into(),
    }];
    for _ in 0..40 {
        let t = corpora::finance_table(&mut rng);
        let p = corpora::surrounding_text(&t, &mut rng);
        inputs.push(TableWithContext {
            table: t.into(),
            paragraph: Some(p),
            topic: "finance".into(),
        });
    }
    let synthetic = pipeline.generate(&inputs);
    println!("Synthesized {} QA samples. A few of them:\n", synthetic.len());
    for s in synthetic.iter().take(6) {
        println!("  Q: {}", s.text);
        println!("  A: {}   [evidence: {}]\n", s.label.as_answer().unwrap(), s.evidence);
    }

    // Train the TAGOP-style QA model on the synthetic data only.
    let model = QaModel::train(&synthetic);

    // Ask real questions.
    let questions = [
        "What was the percentage change in Stockholders' equity from 2018 to 2019?",
        "What was the difference between Revenue and Operating costs in 2019?",
        "Was the Net income in 2019 greater than the Net income in 2018?",
        "What is the total of all values in the 2019 column?",
    ];
    println!("Answering questions with the unsupervised model:");
    for q in questions {
        let sample = Sample::qa(table.clone(), q, "");
        let mut sample = sample;
        sample.context = vec![paragraph.to_string()];
        let answer = model.predict(&sample);
        println!("  Q: {q}\n  A: {answer}\n");
    }
}
