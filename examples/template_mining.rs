//! Template mining: extend the built-in program-template bank with new
//! templates abstracted from concrete programs (paper §IV-B), then use the
//! enlarged bank in the pipeline.
//!
//! ```sh
//! cargo run --example template_mining --release
//! ```

// Examples are demonstration entry points: println! is their output and unwrap on known-good literals keeps them readable.
#![allow(clippy::unwrap_used, clippy::print_stdout)]

use tabular::Table;
use uctr::{TableWithContext, TemplateBank, UctrConfig, UctrPipeline};

fn main() {
    let table = Table::from_strings(
        "Departments",
        &[
            vec!["department", "secretary", "total deputies", "budget"],
            vec!["Commerce", "Ada Bergman", "18", "500"],
            vec!["Defense", "Hugo Castro", "42", "9000"],
            vec!["Treasury", "Mira Novak", "30", "3000"],
            vec!["Energy", "Sven Okafor", "12", "700"],
        ],
    )
    .expect("rectangular grid");

    let mut bank = TemplateBank::builtin();
    let before = bank.len();
    println!(
        "Built-in bank: {} templates ({} SQL / {} logic / {} arithmetic)",
        before,
        bank.sql().len(),
        bank.logic().len(),
        bank.arith().len()
    );

    // Mine a new SQL template from a concrete query: the column names and
    // compared constants are abstracted to typed placeholders.
    let query =
        sqlexec::parse("select [secretary] from w where [budget] > 600 and [total deputies] < 40")
            .unwrap();
    let added = bank.mine_sql(&query, &table);
    println!("\nMined from: {query}");
    println!("  new template added: {added}");
    println!("  signature: {}", sqlexec::abstract_query(&query, &table).signature());

    // Mining the same logic structure again is rejected (the paper's
    // redundancy filtration).
    let similar = sqlexec::parse(
        "select [department] from w where [total deputies] > 20 and [budget] < 5000",
    )
    .unwrap();
    let added_again = bank.mine_sql(&similar, &table);
    println!("\nMined structurally identical query: added = {added_again} (deduplicated)");

    // Mine a logical form and an arithmetic program.
    let claim = logicforms::parse(
        "and { eq { count { filter_greater { all_rows ; budget ; 600 } } ; 2 } ; only { filter_less { all_rows ; total deputies ; 15 } } }",
    )
    .unwrap();
    bank.mine_logic(&claim);
    let arith = arithexpr::parse(
        "subtract( the budget of Defense , the budget of Treasury ) , divide( #0 , the budget of Treasury )",
    )
    .unwrap();
    bank.mine_arith(&arith);
    println!("\nBank after mining: {} templates (+{})", bank.len(), bank.len() - before);

    // Use the enlarged bank in the pipeline.
    let pipeline = UctrPipeline::new(UctrConfig::qa()).with_bank(bank);
    let samples = pipeline.generate(&[TableWithContext::bare(table)]);
    println!("\nGenerated {} samples with the extended bank; a few:", samples.len());
    for s in samples.iter().take(4) {
        println!("  Q: {}\n  A: {}", s.text, s.label.as_answer().unwrap_or("-"));
    }
}
