//! Joint table-text fact checking (the FEVEROUS scenario): verify claims
//! that need evidence from BOTH a Wikipedia-style table and its surrounding
//! prose, using the Table-To-Text / Text-To-Table operators end-to-end.
//!
//! ```sh
//! cargo run --example fact_checking_wiki --release
//! ```

// Examples are demonstration entry points: println! is their output and unwrap on known-good literals keeps them readable.
#![allow(clippy::unwrap_used, clippy::print_stdout)]

use models::{retrieve_cells, EvidenceView, VerdictSpace, VerifierModel};
use tabular::Table;
use uctr::{EvidenceType, Sample, TableWithContext, UctrConfig, UctrPipeline, Verdict};

fn main() {
    let table = Table::from_strings(
        "Summer tournaments",
        &[
            vec!["tournament", "host city", "attendance", "teams"],
            vec!["Harbor Cup", "Oslo", "45000", "16"],
            vec!["Island Trophy", "Lima", "38000", "12"],
            vec!["Mountain Shield", "Kyiv", "51000", "20"],
        ],
    )
    .expect("rectangular grid");
    let paragraph = "The circuit expanded steadily. Coastal Classic has a host city of Porto, \
        an attendance of 29000 and a teams of 10. Sponsors renewed for another season.";

    // Generate joint table-text training data. Table splitting moves one
    // reasoning row into a sentence; table expansion integrates the Coastal
    // Classic record from the paragraph via Text-To-Table.
    let pipeline = UctrPipeline::new(UctrConfig::verification());
    let inputs = vec![TableWithContext {
        table: table.clone().into(),
        paragraph: Some(paragraph.to_string()),
        topic: "sports".into(),
    }];
    let synthetic = pipeline.generate(&inputs);
    let joint = synthetic.iter().filter(|s| s.evidence == EvidenceType::TableText).count();
    println!(
        "Synthesized {} claims ({} of them joint table-text). Examples:\n",
        synthetic.len(),
        joint
    );
    for s in synthetic.iter().filter(|s| s.evidence == EvidenceType::TableText).take(3) {
        println!("  [{}] {}", s.label.as_verdict().unwrap(), s.text);
        println!("     context: {}\n", s.context.join(" "));
    }

    let model = VerifierModel::train(&synthetic, VerdictSpace::TwoWay, EvidenceView::Full);

    // Verify claims that need both modalities, FEVEROUS-style: predict the
    // verdict AND retrieve the evidence cells.
    let mut claim = Sample::verification(
        table.clone(),
        "Mountain Shield has the highest attendance.",
        Verdict::Supported,
    );
    claim.context = tabular::text::split_sentences(paragraph);
    let verdict = model.predict(&claim);
    let evidence = retrieve_cells(&claim);
    println!("Claim: {}", claim.text);
    println!("  verdict:   {verdict}");
    println!("  retrieved evidence cells:");
    for (r, c) in evidence.iter().take(5) {
        println!(
            "    ({r},{c}) {} = {}",
            claim.table.column_name(*c).unwrap_or("?"),
            claim.table.cell(*r, *c).map(|v| v.to_string()).unwrap_or_default()
        );
    }
}
