//! Scientific fact verification (the SEM-TAB-FACTS scenario): 3-way
//! verdicts over tables from scientific articles, including "Unknown" for
//! claims the table cannot decide.
//!
//! ```sh
//! cargo run --example scientific_claims --release
//! ```

// Examples are demonstration entry points: println! is their output and unwrap on known-good literals keeps them readable.
#![allow(clippy::unwrap_used, clippy::print_stdout)]

use models::{EvidenceView, VerdictSpace, VerifierModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabular::Table;
use uctr::{Sample, TableWithContext, UctrConfig, UctrPipeline, Verdict};

fn main() {
    let table = Table::from_strings(
        "Material properties",
        &[
            vec!["material", "density", "melting point", "tensile strength"],
            vec!["PLA", "1.24", "180", "50"],
            vec!["ABS", "1.05", "220", "40"],
            vec!["PETG", "1.27", "245", "53"],
            vec!["Nylon", "1.14", "268", "78"],
            vec!["Kevlar", "1.44", "560", "360"],
        ],
    )
    .expect("rectangular grid");

    // Synthesize 3-way training data (Supported / Refuted / Unknown) over
    // this table plus more unlabeled science tables from the same domain.
    let mut rng = StdRng::seed_from_u64(11);
    let mut unlabeled = vec![TableWithContext::bare(table.clone())];
    for _ in 0..40 {
        unlabeled.push(TableWithContext::bare(corpora::science_table(&mut rng)));
    }
    let pipeline = UctrPipeline::new(UctrConfig {
        unknown_rate: 0.08,
        samples_per_table: 12,
        ..UctrConfig::verification()
    });
    let synthetic = pipeline.generate(&unlabeled);
    let counts = |v: Verdict| synthetic.iter().filter(|s| s.label.as_verdict() == Some(v)).count();
    println!(
        "Synthesized {} claims: {} Supported, {} Refuted, {} Unknown\n",
        synthetic.len(),
        counts(Verdict::Supported),
        counts(Verdict::Refuted),
        counts(Verdict::Unknown),
    );

    let model = VerifierModel::train(&synthetic, VerdictSpace::ThreeWay, EvidenceView::Full);

    let claims = [
        "Kevlar has the highest tensile strength.",
        "There are 2 rows whose density is more than 1.25.",
        "ABS has the highest melting point.",
        "Most of the rows have a melting point above 200.",
        "The average density is 1.23.",
    ];
    println!("Verifying claims against the table:");
    for claim in claims {
        let s = Sample::verification(table.clone(), claim, Verdict::Supported);
        println!("  [{:>9}] {claim}", model.predict(&s).to_string());
    }

    // A claim about an entity the table does not cover.
    let off_table = Sample::verification(
        table.clone(),
        "Graphene sheets exhibit a thermal conductivity of 5300.",
        Verdict::Unknown,
    );
    println!(
        "  [{:>9}] Graphene sheets exhibit a thermal conductivity of 5300. (not in table)",
        model.predict(&off_table).to_string()
    );
}
