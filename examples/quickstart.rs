//! Quickstart: generate labeled tabular-reasoning data from one unlabeled
//! table with the UCTR pipeline, then train and use a verifier.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

// Examples are demonstration entry points: println! is their output and unwrap on known-good literals keeps them readable.
#![allow(clippy::unwrap_used, clippy::print_stdout)]

use models::{EvidenceView, VerdictSpace, VerifierModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabular::Table;
use uctr::{Sample, TableWithContext, UctrConfig, UctrPipeline, Verdict};

fn main() {
    // 1. An unlabeled table — the only input UCTR needs.
    let table = Table::from_strings(
        "League standings",
        &[
            vec!["team", "city", "points", "wins"],
            vec!["Red Lions", "Oslo", "77", "21"],
            vec!["Blue Sharks", "Lima", "64", "18"],
            vec!["Golden Hawks", "Kyiv", "81", "24"],
            vec!["Iron Wolves", "Quito", "59", "15"],
        ],
    )
    .expect("rectangular grid");

    // 2. UCTR exploits unlabeled table *resources*: add more unlabeled
    //    tables from the same domain (here generated; in practice scraped)
    //    and run the pipeline — program sampling -> execution -> NL
    //    generation -> table splitting.
    let mut rng = StdRng::seed_from_u64(7);
    let mut unlabeled = vec![TableWithContext::bare(table.clone())];
    for _ in 0..40 {
        unlabeled.push(TableWithContext::bare(corpora::wiki_table("sports", &mut rng)));
    }
    let pipeline = UctrPipeline::new(UctrConfig::verification());
    let samples: Vec<Sample> = pipeline.generate(&unlabeled);
    println!(
        "UCTR synthesized {} labeled claims from {} unlabeled tables.\n",
        samples.len(),
        unlabeled.len()
    );
    for s in samples.iter().take(5) {
        println!("  [{:?}] {}", s.label.as_verdict().unwrap(), s.text);
    }

    // 3. Train a fact-verification model on the synthetic data — no human
    //    labels involved.
    let model = VerifierModel::train(&samples, VerdictSpace::TwoWay, EvidenceView::Full);

    // 4. Verify new claims against the table.
    let claims = [
        ("Golden Hawks has the highest points.", Verdict::Supported),
        ("Iron Wolves has the highest points.", Verdict::Refuted),
        ("There are 2 rows whose points is more than 70.", Verdict::Supported),
    ];
    println!("\nVerifying unseen claims:");
    let mut correct = 0;
    for (claim, expected) in claims {
        let s = Sample::verification(table.clone(), claim, expected);
        let predicted = model.predict(&s);
        let mark = if predicted == expected { "ok " } else { "MISS" };
        println!("  [{mark}] {claim}  ->  predicted {predicted}, expected {expected}");
        if predicted == expected {
            correct += 1;
        }
    }
    println!(
        "\n{correct}/{} claims verified correctly by a model that never saw a human label.",
        claims.len()
    );
}
