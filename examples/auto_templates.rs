//! Auto program generation (the paper's stated future work): learn the
//! template distribution from the built-in bank, synthesize novel validated
//! logical-form templates, and use the extended bank in the pipeline.
//!
//! ```sh
//! cargo run --example auto_templates --release
//! ```

// Examples are demonstration entry points: println! is their output and unwrap on known-good literals keeps them readable.
#![allow(clippy::unwrap_used, clippy::print_stdout)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use tabular::Table;
use uctr::{AutoGenerator, TableWithContext, TemplateBank, UctrConfig, UctrPipeline};

fn main() {
    let probe = Table::from_strings(
        "probe",
        &[
            vec!["team", "city", "points", "wins"],
            vec!["Reds", "Oslo", "77", "21"],
            vec!["Blues", "Lima", "64", "18"],
            vec!["Greens", "Kyiv", "81", "24"],
            vec!["Golds", "Quito", "59", "15"],
            vec!["Silvers", "Porto", "70", "19"],
        ],
    )
    .expect("rectangular grid");

    // 1. Fit the proposal distribution on the built-in template bank.
    let bank = TemplateBank::builtin();
    let mut generator = AutoGenerator::fit(bank.logic());
    println!("Seed corpus: {} logical-form templates.\n", bank.logic().len());

    // 2. Synthesize novel templates; each is validated by instantiating a
    //    Supported AND a Refuted claim on the probe table.
    let mut existing = bank.logic().iter().map(|t| t.signature()).collect();
    let mut rng = StdRng::seed_from_u64(2024);
    let novel = generator.generate(8, &probe, &mut existing, &mut rng);
    println!("Synthesized {} validated novel templates:", novel.len());
    for t in &novel {
        println!("  [{}] {}", t.logic_type(), t.signature());
    }

    // 3. Show a claim each template generates.
    println!("\nClaims instantiated from the novel templates:");
    let nl = nlgen::NlGenerator::new().with_noise(nlgen::NoiseConfig::off());
    for t in novel.iter().take(4) {
        if let Some(claim) = t.instantiate(&probe, &mut rng, true) {
            let text = nl.logic_claim(&claim.expr, &mut rng).text;
            println!("  [Supported] {text}");
        }
    }

    // 4. Run the pipeline with the extended bank.
    let mut extended = TemplateBank::builtin();
    for t in novel {
        extended.add_logic(t);
    }
    let pipeline = UctrPipeline::new(UctrConfig::verification()).with_bank(extended);
    let samples = pipeline.generate(&[TableWithContext::bare(probe)]);
    println!(
        "\nPipeline with the extended bank produced {} labeled claims from one table.",
        samples.len()
    );
}
