//! Root meta-crate for the UCTR reproduction workspace; see crates/*.
pub use uctr;
